//! `syseco-load` — load generator and overload benchmark for the
//! `syseco-serve` daemon (DESIGN.md §15).
//!
//! Jobs are fuzz-generated rectification scenarios
//! ([`eco_fuzz::generate_chain`]): revision *chains* share one
//! implementation, so consecutive jobs re-present the same cones and
//! exercise cross-job reuse of the daemon's shared cache. Jobs are spread
//! across three tenants with mixed weights and priorities.
//!
//! Two modes:
//!
//! * **Replay** (`--addr HOST:PORT`): submit `--jobs` requests over
//!   `--concurrency` connections at an open-loop `--qps` rate, optionally
//!   cancelling every `--cancel-nth` job after admission and attaching a
//!   `--deadline-ms` deadline to every `--deadline-nth` job. Prints a
//!   JSON summary to stdout.
//! * **Benchmark** (`--bench`): spin an in-process daemon (2 workers,
//!   shared cache + checkpoint dirs under a temp root), calibrate its
//!   capacity from sequential jobs, verify completed patches are
//!   byte-identical to a direct no-daemon [`Session`] run, then sweep
//!   sustained 1x/2x/4x overload and write throughput, p50/p99 latency,
//!   and degradation/rejection rates to `BENCH_serve.json`.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | every job resolved and accounted (completed/degraded/cancelled/expired or rejected) |
//! | 1    | violation: transport error, engine failure, unaccounted job, or patch mismatch |
//! | 2    | usage error |

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use eco_fuzz::{generate_chain, ScenarioConfig};
use eco_netlist::write_blif;
use syseco::serve::{
    Client, JobRequest, JobStatus, Priority, RejectReason, SchedulerConfig, Server, ServerConfig,
};
use syseco::telemetry::Counter;
use syseco::{EcoOptions, EngineRunner, Session, Telemetry};

const USAGE: &str = "\
usage: syseco-load --addr HOST:PORT [options]   replay against a running daemon
       syseco-load --bench [options]            in-process overload benchmark

common options:
  --jobs N          total jobs to submit (default 12)
  --concurrency C   parallel client connections (default 4)
  --qps F           open-loop submit rate; 0 = as fast as possible (default 0)
  --chain-len K     revisions per fuzz chain (default 3)
  --seed S          scenario seed base (default 1)
  --cancel-nth K    cancel every K-th job right after admission (0 = never)
  --deadline-nth K  give every K-th job a deadline (0 = never)
  --deadline-ms MS  that deadline, in milliseconds (default 1)
  --summary-out F   also write the replay summary JSON to F
benchmark options:
  --out FILE        benchmark report path (default BENCH_serve.json)
  -h, --help        print this help
exit codes: 0 all jobs accounted, 1 violation, 2 usage error";

// ---------------------------------------------------------------------------
// Argument parsing
// ---------------------------------------------------------------------------

struct LoadArgs {
    addr: Option<String>,
    bench: bool,
    jobs: usize,
    concurrency: usize,
    qps: f64,
    chain_len: usize,
    seed: u64,
    cancel_nth: usize,
    deadline_nth: usize,
    deadline_ms: u64,
    summary_out: Option<String>,
    out: String,
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

fn parse_args(mut args: std::env::Args) -> Result<Option<LoadArgs>, String> {
    let mut parsed = LoadArgs {
        addr: None,
        bench: false,
        jobs: 12,
        concurrency: 4,
        qps: 0.0,
        chain_len: 3,
        seed: 1,
        cancel_nth: 0,
        deadline_nth: 0,
        deadline_ms: 1,
        summary_out: None,
        out: "BENCH_serve.json".into(),
    };
    args.next(); // argv[0]
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => parsed.addr = Some(parse_value(&arg, args.next())?),
            "--bench" => parsed.bench = true,
            "--jobs" => parsed.jobs = parse_value(&arg, args.next())?,
            "--concurrency" => parsed.concurrency = parse_value(&arg, args.next())?,
            "--qps" => parsed.qps = parse_value(&arg, args.next())?,
            "--chain-len" => parsed.chain_len = parse_value(&arg, args.next())?,
            "--seed" => parsed.seed = parse_value(&arg, args.next())?,
            "--cancel-nth" => parsed.cancel_nth = parse_value(&arg, args.next())?,
            "--deadline-nth" => parsed.deadline_nth = parse_value(&arg, args.next())?,
            "--deadline-ms" => parsed.deadline_ms = parse_value(&arg, args.next())?,
            "--summary-out" => parsed.summary_out = Some(parse_value(&arg, args.next())?),
            "--out" => parsed.out = parse_value(&arg, args.next())?,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if parsed.bench == parsed.addr.is_some() {
        return Err("pass exactly one of --addr or --bench".into());
    }
    if !parsed.qps.is_finite() || parsed.qps < 0.0 {
        return Err("--qps: must be a non-negative finite number".into());
    }
    if parsed.jobs == 0 {
        return Err("--jobs: must be at least 1".into());
    }
    Ok(Some(parsed))
}

// ---------------------------------------------------------------------------
// Workload construction
// ---------------------------------------------------------------------------

/// Builds `total` deterministic job requests from fuzz revision chains of
/// `chain_len`, spread over three tenants with mixed weights/priorities.
/// Every `deadline_nth`-th job (1-based stride) carries `deadline_ms`.
fn build_jobs(
    seed: u64,
    total: usize,
    chain_len: usize,
    deadline_nth: usize,
    deadline_ms: u64,
) -> Vec<JobRequest> {
    let config = ScenarioConfig::default();
    let chain_len = chain_len.max(1);
    let mut jobs = Vec::with_capacity(total);
    let mut chain_index = 0u64;
    'outer: loop {
        let chain = generate_chain(seed.wrapping_add(chain_index), &config, chain_len)
            .expect("fuzz chain generation is infallible for the default config");
        chain_index += 1;
        for scenario in &chain {
            let i = jobs.len();
            if i >= total {
                break 'outer;
            }
            let mut request = JobRequest::new(
                format!("tenant-{}", i % 3),
                write_blif(&scenario.implementation),
                write_blif(&scenario.spec),
            );
            request.seed = seed.wrapping_add(i as u64);
            request.weight = if i % 3 == 0 { 4 } else { 1 };
            request.priority = match i % 7 {
                0 => Priority::High,
                3 => Priority::Low,
                _ => Priority::Normal,
            };
            if deadline_nth > 0 && i % deadline_nth == deadline_nth - 1 {
                request.deadline_ms = deadline_ms;
            }
            request.tag = format!("job-{i}");
            jobs.push(request);
        }
        if jobs.len() >= total {
            break;
        }
    }
    jobs
}

// ---------------------------------------------------------------------------
// Phase runner
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Outcome {
    Done(JobStatus),
    Rejected(RejectReason),
    Transport(String),
}

#[derive(Clone, Debug)]
struct Record {
    index: usize,
    outcome: Outcome,
    latency: Duration,
    patch_blif: String,
}

/// Submits every job in `jobs` against `addr` over `concurrency`
/// connections, pacing submissions at `qps` (open loop: job `i` is due at
/// `start + i/qps`). Cancels every `cancel_nth`-th admitted job. Returns
/// one record per job plus the phase wall-clock.
fn run_phase(
    addr: &str,
    jobs: &[JobRequest],
    concurrency: usize,
    qps: f64,
    cancel_nth: usize,
    keep_patches: bool,
) -> (Vec<Record>, Duration) {
    let next = AtomicUsize::new(0);
    let records: Mutex<Vec<Record>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    return;
                }
                if qps > 0.0 {
                    let due = start + Duration::from_secs_f64(i as f64 / qps);
                    std::thread::sleep(due.saturating_duration_since(Instant::now()));
                }
                let record = drive_one(addr, &jobs[i], i, cancel_nth, keep_patches);
                records.lock().unwrap().push(record);
            });
        }
    });
    let elapsed = start.elapsed();
    let mut records = records.into_inner().unwrap();
    records.sort_by_key(|r| r.index);
    (records, elapsed)
}

/// One job, end to end, over a fresh connection.
fn drive_one(
    addr: &str,
    request: &JobRequest,
    index: usize,
    cancel_nth: usize,
    keep_patches: bool,
) -> Record {
    let submitted = Instant::now();
    let fail = |why: String| Record {
        index,
        outcome: Outcome::Transport(why),
        latency: submitted.elapsed(),
        patch_blif: String::new(),
    };
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => return fail(format!("connect: {e}")),
    };
    let job_id = match client.submit(request) {
        Ok(syseco::serve::SubmitReply::Accepted(id)) => id,
        Ok(syseco::serve::SubmitReply::Rejected { reason, .. }) => {
            return Record {
                index,
                outcome: Outcome::Rejected(reason),
                latency: submitted.elapsed(),
                patch_blif: String::new(),
            }
        }
        Err(e) => return fail(format!("submit: {e}")),
    };
    if cancel_nth > 0 && index % cancel_nth == cancel_nth - 1 {
        if let Err(e) = client.cancel(job_id) {
            return fail(format!("cancel: {e}"));
        }
    }
    match client.wait_done(job_id) {
        Ok(report) => Record {
            index,
            outcome: Outcome::Done(report.status),
            latency: submitted.elapsed(),
            patch_blif: if keep_patches {
                report.patch_blif
            } else {
                String::new()
            },
        },
        Err(e) => fail(format!("wait: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------------

struct Summary {
    jobs: usize,
    completed: usize,
    degraded: usize,
    cancelled: usize,
    expired: usize,
    failed: usize,
    rejected: usize,
    errors: usize,
    elapsed_s: f64,
    throughput_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank].as_secs_f64() * 1e3
}

fn summarize(records: &[Record], elapsed: Duration) -> Summary {
    let mut summary = Summary {
        jobs: records.len(),
        completed: 0,
        degraded: 0,
        cancelled: 0,
        expired: 0,
        failed: 0,
        rejected: 0,
        errors: 0,
        elapsed_s: elapsed.as_secs_f64(),
        throughput_per_s: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
    };
    let mut latencies = Vec::new();
    for record in records {
        match &record.outcome {
            Outcome::Done(status) => {
                latencies.push(record.latency);
                match status {
                    JobStatus::Completed => summary.completed += 1,
                    JobStatus::Degraded => summary.degraded += 1,
                    JobStatus::Cancelled => summary.cancelled += 1,
                    JobStatus::Expired => summary.expired += 1,
                    JobStatus::Failed => summary.failed += 1,
                }
            }
            Outcome::Rejected(_) => summary.rejected += 1,
            Outcome::Transport(_) => summary.errors += 1,
        }
    }
    latencies.sort();
    summary.throughput_per_s = latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    summary.p50_ms = percentile_ms(&latencies, 0.50);
    summary.p99_ms = percentile_ms(&latencies, 0.99);
    summary
}

impl Summary {
    fn resolved(&self) -> usize {
        self.completed + self.degraded + self.cancelled + self.expired + self.failed
    }

    fn to_json(&self, indent: &str) -> String {
        let degraded_rate = self.degraded as f64 / self.jobs.max(1) as f64;
        let rejected_rate = self.rejected as f64 / self.jobs.max(1) as f64;
        format!(
            "{{\n{indent}  \"jobs\": {},\n{indent}  \"completed\": {},\n\
             {indent}  \"degraded\": {},\n{indent}  \"cancelled\": {},\n\
             {indent}  \"expired\": {},\n{indent}  \"failed\": {},\n\
             {indent}  \"rejected\": {},\n{indent}  \"transport_errors\": {},\n\
             {indent}  \"elapsed_s\": {:.4},\n{indent}  \"throughput_per_s\": {:.4},\n\
             {indent}  \"p50_ms\": {:.3},\n{indent}  \"p99_ms\": {:.3},\n\
             {indent}  \"degraded_rate\": {:.4},\n{indent}  \"rejected_rate\": {:.4}\n{indent}}}",
            self.jobs,
            self.completed,
            self.degraded,
            self.cancelled,
            self.expired,
            self.failed,
            self.rejected,
            self.errors,
            self.elapsed_s,
            self.throughput_per_s,
            self.p50_ms,
            self.p99_ms,
            degraded_rate,
            rejected_rate,
        )
    }
}

// ---------------------------------------------------------------------------
// Replay mode
// ---------------------------------------------------------------------------

fn replay(args: &LoadArgs) -> ExitCode {
    let addr = args.addr.as_deref().expect("replay mode has an address");
    let jobs = build_jobs(
        args.seed,
        args.jobs,
        args.chain_len,
        args.deadline_nth,
        args.deadline_ms,
    );
    eprintln!(
        "syseco-load: replaying {} jobs against {addr} ({} connections, qps {})",
        jobs.len(),
        args.concurrency,
        if args.qps > 0.0 {
            format!("{:.2}", args.qps)
        } else {
            "unpaced".into()
        }
    );
    let (records, elapsed) = run_phase(
        addr,
        &jobs,
        args.concurrency,
        args.qps,
        args.cancel_nth,
        false,
    );
    for record in &records {
        if let Outcome::Transport(why) = &record.outcome {
            eprintln!("syseco-load: job {} transport error: {why}", record.index);
        }
    }
    let summary = summarize(&records, elapsed);
    let json = format!("{}\n", summary.to_json(""));
    print!("{json}");
    if let Some(path) = &args.summary_out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("syseco-load: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if summary.errors == 0 && summary.resolved() + summary.rejected == summary.jobs {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "syseco-load: violation: {} transport errors, {} of {} jobs unaccounted",
            summary.errors,
            summary.jobs - summary.resolved() - summary.rejected,
            summary.jobs
        );
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Benchmark mode
// ---------------------------------------------------------------------------

const BENCH_WORKERS: usize = 2;
const CALIBRATION_JOBS: usize = 6;
const PHASE_JOBS: usize = 24;
const PHASE_CONNECTIONS: usize = 6;

fn bench(args: &LoadArgs) -> ExitCode {
    let root = std::env::temp_dir().join(format!("syseco-load-bench-{}", std::process::id()));
    let cache_dir = root.join("cache");
    let checkpoint_dir = root.join("checkpoints");
    if let Err(e) =
        std::fs::create_dir_all(&cache_dir).and_then(|()| std::fs::create_dir_all(&checkpoint_dir))
    {
        eprintln!("syseco-load: temp dirs under {}: {e}", root.display());
        return ExitCode::FAILURE;
    }

    let base = EcoOptions::builder()
        .seed(args.seed)
        .jobs(1)
        .cache_dir(&cache_dir)
        .checkpoint_dir(&checkpoint_dir)
        .build();
    let telemetry = Telemetry::enabled();
    let runner = Arc::new(EngineRunner::new(base, telemetry.clone()));
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        http_addr: Some("127.0.0.1:0".into()),
        workers: BENCH_WORKERS,
        sched: SchedulerConfig::default(),
    };
    let server = match Server::bind(config, runner.clone(), telemetry.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("syseco-load: bind in-process daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.addr() {
        Ok(addr) => addr.to_string(),
        Err(e) => {
            eprintln!("syseco-load: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shutdown = server.shutdown_handle();
    let daemon = std::thread::spawn(move || server.run());
    let mut violations: Vec<String> = Vec::new();

    // Calibration: sequential jobs, engine runtime only, plus the
    // CLI-path byte-identity check on every completed patch.
    eprintln!("syseco-load: calibrating against {addr} ({CALIBRATION_JOBS} sequential jobs)");
    let calibration_jobs = build_jobs(args.seed, CALIBRATION_JOBS, args.chain_len, 0, 0);
    let (calibration, _) = run_phase(&addr, &calibration_jobs, 1, 0.0, 0, true);
    let mut service_s = Vec::new();
    let mut identical = 0usize;
    for record in &calibration {
        match &record.outcome {
            Outcome::Done(JobStatus::Completed) => {
                service_s.push(record.latency.as_secs_f64());
                // The CLI path: a plain Session over the same request
                // options, no daemon, no shared cache.
                let request = &calibration_jobs[record.index];
                let options = EcoOptions::builder().seed(request.seed).jobs(1).build();
                let implementation = eco_netlist::read_blif(&request.impl_blif).unwrap();
                let spec = eco_netlist::read_blif(&request.spec_blif).unwrap();
                match Session::new(options).run(&implementation, &spec) {
                    Ok(direct) if write_blif(&direct.patched) == record.patch_blif => {
                        identical += 1;
                    }
                    Ok(_) => violations.push(format!(
                        "job {}: daemon patch differs from the direct Session patch",
                        record.index
                    )),
                    Err(e) => {
                        violations.push(format!("job {}: direct run failed: {e}", record.index))
                    }
                }
            }
            Outcome::Done(other) => {
                service_s.push(record.latency.as_secs_f64());
                violations.push(format!(
                    "calibration job {} ended {} instead of completed",
                    record.index,
                    other.label()
                ));
            }
            Outcome::Rejected(reason) => violations.push(format!(
                "calibration job {} rejected ({})",
                record.index,
                reason.label()
            )),
            Outcome::Transport(why) => {
                violations.push(format!("calibration job {}: {why}", record.index))
            }
        }
    }
    let mean_service_s = if service_s.is_empty() {
        1.0
    } else {
        service_s.iter().sum::<f64>() / service_s.len() as f64
    };
    let capacity_qps = (BENCH_WORKERS as f64 / mean_service_s.max(1e-6)).max(0.5);
    eprintln!(
        "syseco-load: mean service {:.1} ms, capacity ~{capacity_qps:.1} jobs/s",
        mean_service_s * 1e3
    );

    // Overload sweep: open-loop arrivals at 1x/2x/4x the measured
    // capacity, with a slice of short-deadline jobs and mid-flight
    // cancellations in every phase.
    let mut phases: Vec<(&str, f64, Summary)> = Vec::new();
    for (label, multiplier) in [
        ("overload_1x", 1.0),
        ("overload_2x", 2.0),
        ("overload_4x", 4.0),
    ] {
        let offered = capacity_qps * multiplier;
        eprintln!("syseco-load: phase {label}: {PHASE_JOBS} jobs at {offered:.1} jobs/s");
        let jobs = build_jobs(
            args.seed + 1000 * multiplier as u64,
            PHASE_JOBS,
            args.chain_len,
            6,
            args.deadline_ms,
        );
        let (records, elapsed) = run_phase(&addr, &jobs, PHASE_CONNECTIONS, offered, 8, false);
        let summary = summarize(&records, elapsed);
        if summary.errors > 0 {
            violations.push(format!("{label}: {} transport errors", summary.errors));
        }
        if summary.failed > 0 {
            violations.push(format!("{label}: {} engine failures", summary.failed));
        }
        if summary.resolved() + summary.rejected != summary.jobs {
            violations.push(format!(
                "{label}: {} of {} jobs unaccounted",
                summary.jobs - summary.resolved() - summary.rejected,
                summary.jobs
            ));
        }
        phases.push((label, offered, summary));
    }

    // Drain and reconcile the shared metrics registry: every admitted job
    // must be visible as exactly one terminal counter.
    shutdown.store(true, Ordering::Relaxed);
    match daemon.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => violations.push(format!("daemon run error: {e}")),
        Err(_) => violations.push("daemon thread panicked".into()),
    }
    let snapshot = telemetry.snapshot();
    let submitted = snapshot.counter(Counter::ServeSubmitted);
    let admitted = snapshot.counter(Counter::ServeAdmitted);
    let rejected = snapshot.counter(Counter::ServeRejected);
    let terminal = snapshot.counter(Counter::ServeCompleted)
        + snapshot.counter(Counter::ServeDegraded)
        + snapshot.counter(Counter::ServeCancelled)
        + snapshot.counter(Counter::ServeExpired)
        + snapshot.counter(Counter::ServeFailed);
    if submitted != admitted + rejected {
        violations.push(format!(
            "metrics: submitted {submitted} != admitted {admitted} + rejected {rejected}"
        ));
    }
    if terminal != admitted {
        violations.push(format!(
            "metrics: {admitted} admitted but {terminal} terminal outcomes"
        ));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"calibration\": {\n");
    json.push_str(&format!("    \"jobs\": {CALIBRATION_JOBS},\n"));
    json.push_str(&format!(
        "    \"mean_service_ms\": {:.3},\n",
        mean_service_s * 1e3
    ));
    json.push_str(&format!("    \"capacity_qps\": {capacity_qps:.3},\n"));
    json.push_str(&format!(
        "    \"patches_byte_identical_with_direct_session\": {}\n",
        identical == service_s.len() && !service_s.is_empty()
    ));
    json.push_str("  },\n");
    for (label, offered, summary) in &phases {
        json.push_str(&format!("  \"{label}\": {{\n"));
        json.push_str(&format!("    \"offered_qps\": {offered:.3},\n"));
        let body = summary.to_json("  ");
        // Splice the phase summary's fields into this object.
        let inner = body
            .trim_start_matches("{\n")
            .trim_end_matches('}')
            .trim_end();
        json.push_str(inner);
        json.push_str("\n  },\n");
    }
    json.push_str("  \"accounting\": {\n");
    json.push_str(&format!("    \"submitted\": {submitted},\n"));
    json.push_str(&format!("    \"admitted\": {admitted},\n"));
    json.push_str(&format!("    \"rejected\": {rejected},\n"));
    json.push_str(&format!("    \"terminal\": {terminal},\n"));
    json.push_str(&format!(
        "    \"unaccounted\": {}\n",
        admitted.saturating_sub(terminal)
    ));
    json.push_str("  },\n");
    json.push_str(&format!("  \"violations\": {},\n", violations.len()));
    json.push_str(
        "  \"methodology\": \"In-process daemon, 2 workers, jobs=1 per engine run, shared \
         cache + checkpoint dirs under a temp root. Capacity is workers / mean sequential \
         service time over 6 fuzz-chain jobs; each overload phase offers 24 open-loop jobs \
         at the labelled multiple of that capacity over 6 connections, with every 6th job \
         on a 1 ms deadline and every 8th cancelled after admission. Latencies are \
         submit-to-Done wall clock, so queueing is included; later phases inherit a warmer \
         shared cache, as a long-lived daemon would.\"\n",
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("syseco-load: write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("syseco-load: wrote {}", args.out);
    let _ = std::fs::remove_dir_all(&root);

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("syseco-load: violation: {violation}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args()) {
        Ok(Some(args)) if args.bench => bench(&args),
        Ok(Some(args)) => replay(&args),
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(why) => {
            eprintln!("syseco-load: {why}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
