//! `syseco-serve` — the multi-tenant batch rectification daemon
//! (DESIGN.md §15).
//!
//! Accepts rectification jobs over the length-prefixed framed protocol
//! (`syseco::serve::frame`), schedules them across tenants with weighted
//! fair queuing and priority lanes, runs them through the engine with a
//! shared on-disk cache and one telemetry registry, and serves
//! `GET /metrics` (OpenMetrics) and `GET /healthz` over plain HTTP.
//!
//! ```text
//! syseco-serve [--addr HOST:PORT] [--http HOST:PORT] [--workers N]
//!              [--jobs N] [--lane-capacity N] [--default-deadline SECS]
//!              [--shed-watermark N] [--cache-dir DIR]
//!              [--checkpoint-dir DIR] [--seed N]
//! ```
//!
//! On startup the bound addresses are printed to stdout as
//! `listening <addr>` and (when `--http` is given) `http <addr>`, so
//! scripts using an ephemeral port `:0` can discover where to connect.
//!
//! Shutdown is graceful on SIGTERM/SIGINT or a client `Shutdown` frame:
//! the daemon stops accepting, resolves every queued job as `Cancelled`,
//! cancel-flags running jobs (which checkpoint and finish fast through
//! the engine's degradation ladder), then exits.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean drain after a shutdown request |
//! | 1    | fatal error (bind failure, I/O trouble) |
//! | 2    | usage error |

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use syseco::serve::{SchedulerConfig, Server, ServerConfig};
use syseco::{EcoOptions, EngineRunner, Telemetry};

const USAGE: &str = "\
usage: syseco-serve [options]
  --addr HOST:PORT        job-protocol listen address (default 127.0.0.1:7171)
  --http HOST:PORT        serve GET /metrics and /healthz here (off by default)
  --workers N             engine worker threads (default 2)
  --jobs N                engine threads per job (default 1)
  --lane-capacity N       queued jobs per priority lane before Rejected{Overloaded}
  --default-deadline SECS deadline applied to jobs that do not bring one
  --shed-watermark N      queue depth per degradation-ladder step
  --cache-dir DIR         shared persistent eco-cache store
  --checkpoint-dir DIR    crash/drain checkpoint directory
  --seed N                base engine seed (jobs may override per request)
  -h, --help              print this help
exit codes: 0 clean drain, 1 fatal error, 2 usage error";

struct ServeArgs {
    addr: String,
    http: Option<String>,
    workers: usize,
    jobs: usize,
    lane_capacity: Option<usize>,
    default_deadline: Option<f64>,
    shed_watermark: Option<usize>,
    cache_dir: Option<String>,
    checkpoint_dir: Option<String>,
    seed: u64,
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

fn parse_args(mut args: std::env::Args) -> Result<Option<ServeArgs>, String> {
    let mut parsed = ServeArgs {
        addr: "127.0.0.1:7171".into(),
        http: None,
        workers: 2,
        jobs: 1,
        lane_capacity: None,
        default_deadline: None,
        shed_watermark: None,
        cache_dir: None,
        checkpoint_dir: None,
        seed: 1,
    };
    args.next(); // argv[0]
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => parsed.addr = parse_value(&arg, args.next())?,
            "--http" => parsed.http = Some(parse_value(&arg, args.next())?),
            "--workers" => parsed.workers = parse_value(&arg, args.next())?,
            "--jobs" => parsed.jobs = parse_value(&arg, args.next())?,
            "--lane-capacity" => parsed.lane_capacity = Some(parse_value(&arg, args.next())?),
            "--default-deadline" => {
                let secs: f64 = parse_value(&arg, args.next())?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("{arg}: must be a positive number of seconds"));
                }
                parsed.default_deadline = Some(secs);
            }
            "--shed-watermark" => parsed.shed_watermark = Some(parse_value(&arg, args.next())?),
            "--cache-dir" => parsed.cache_dir = Some(parse_value(&arg, args.next())?),
            "--checkpoint-dir" => parsed.checkpoint_dir = Some(parse_value(&arg, args.next())?),
            "--seed" => parsed.seed = parse_value(&arg, args.next())?,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Some(parsed))
}

/// Installs SIGTERM/SIGINT handlers that flip an async-signal-safe static,
/// plus a watcher thread that copies the static into the server's shutdown
/// flag. The watcher never exits on its own; it dies with the process
/// after the drained `run()` returns.
#[cfg(unix)]
fn install_signal_watcher(shutdown: Arc<AtomicBool>) {
    static SIGNALLED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::Relaxed);
    }
    extern "C" {
        // Direct libc symbol: the workspace is dependency-free, and
        // `signal(2)` is all the daemon needs from it.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::Relaxed) {
            shutdown.store(true, Ordering::Relaxed);
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });
}

#[cfg(not(unix))]
fn install_signal_watcher(_shutdown: Arc<AtomicBool>) {
    // No signals to bridge; the Shutdown frame remains available.
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(why) => {
            eprintln!("syseco-serve: {why}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut builder = EcoOptions::builder().seed(args.seed).jobs(args.jobs);
    if let Some(dir) = &args.cache_dir {
        builder = builder.cache_dir(dir);
    }
    if let Some(dir) = &args.checkpoint_dir {
        builder = builder.checkpoint_dir(dir);
    }
    let base = builder.build();

    let mut sched = SchedulerConfig::default();
    if let Some(capacity) = args.lane_capacity {
        sched.lane_capacity = capacity.max(1);
    }
    if let Some(secs) = args.default_deadline {
        sched.default_deadline = Duration::from_secs_f64(secs);
    }
    if let Some(watermark) = args.shed_watermark {
        sched.shed_watermark = watermark.max(1);
    }

    let telemetry = Telemetry::enabled();
    let runner = Arc::new(EngineRunner::new(base, telemetry.clone()));
    let config = ServerConfig {
        addr: args.addr,
        http_addr: args.http,
        workers: args.workers.max(1),
        sched,
    };
    let server = match Server::bind(config, runner, telemetry) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("syseco-serve: bind: {e}");
            return ExitCode::FAILURE;
        }
    };

    match server.addr() {
        Ok(addr) => println!("listening {addr}"),
        Err(e) => {
            eprintln!("syseco-serve: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(http) = server.http_addr() {
        println!("http {http}");
    }
    let _ = std::io::stdout().flush();

    install_signal_watcher(server.shutdown_handle());
    match server.run() {
        Ok(()) => {
            eprintln!("syseco-serve: drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("syseco-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
