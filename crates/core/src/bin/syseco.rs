//! Command-line front end for the syseco engine.
//!
//! ```text
//! syseco stats   <design.blif>
//! syseco check   <impl.blif> <spec.blif>
//! syseco rectify <impl.blif> <spec.blif> [--engine syseco|deltasyn|cone]
//!                [--out patched.blif] [--seed N] [--samples N]
//!                [--level-driven] [--timeout SECS] [--jobs N] [--progress]
//!                [--cache-dir DIR] [--cache off|ro|rw]
//!                [--checkpoint-dir DIR]
//!                [--trace-out FILE] [--metrics-out FILE]
//!                [--report-out FILE] [--openmetrics-out FILE]
//!                [--log-format human|json]
//! syseco report  <trace.jsonl> [--metrics metrics.json] [--out FILE]
//!                [--wall-clock] [--title STRING]
//! ```
//!
//! `--jobs N` sets the worker-thread count for the per-output searches
//! (`0` = available parallelism; the patch is identical for every value).
//! `--cache-dir DIR` enables the persistent incremental-ECO cache
//! (DESIGN.md §11): repeated and revision-chain runs warm-start from
//! recorded results, with every reused record re-verified before use.
//! `--cache off|ro|rw` sets how the directory is used (default `rw`;
//! `--engine syseco` only).
//! `--checkpoint-dir DIR` enables crash-safe checkpointing (DESIGN.md
//! §13): per-output results are durably recorded as they complete, so a
//! rerun of a killed process resumes the finished outputs, re-verifies
//! them, and produces the same patch the uninterrupted run would have
//! (`--engine syseco` only).
//! `--progress` prints a live per-cone status line to stderr as searches
//! start, finish, and merge; with `--log-format json` each line is one
//! JSON object instead (see [`ProgressEvent::to_json`]).
//!
//! `--trace-out FILE` records structured spans and writes them on exit:
//! Chrome trace-event JSON (load in `chrome://tracing` or Perfetto) by
//! default, span-per-line JSONL when `FILE` ends in `.jsonl`.
//! `--metrics-out FILE` writes the folded metrics registry (SAT conflict
//! counts, BDD cache hit rates, search/validate timing histograms) as
//! JSON. `--report-out FILE` renders the deterministic markdown run
//! report (DESIGN.md §14) directly from the run's spans and metrics.
//! `--openmetrics-out FILE` writes the metrics registry in OpenMetrics
//! text exposition format for scrape-style collection. All four are
//! `--engine syseco` only.
//!
//! `syseco report` re-renders the same markdown report offline from a
//! previously written span JSONL file (`--trace-out FILE.jsonl`) and,
//! optionally, a metrics JSON file. The default report contains no
//! wall-clock data, so it is byte-identical for any `--jobs` value and
//! across checkpoint kill/resume; `--wall-clock` opts into timing
//! columns.
//!
//! Designs are read and written in the BLIF-style format of
//! [`eco_netlist::io`].
//!
//! Exit codes: 0 success, 1 verification failure, 2 usage error, 3 the run
//! completed but degraded (budget ran out or a per-output search was cut
//! short; the patch is still verified for every output it claims to fix).

use std::process::ExitCode;

use eco_netlist::{read_blif, write_blif, Circuit, CircuitStats};
use syseco::baseline::{cone, deltasyn};
use syseco::correspond::Correspondence;
use syseco::error_domain::{classify_outputs, Equivalence};
use syseco::telemetry::export::{chrome_trace, metrics_json, openmetrics, spans_jsonl};
use syseco::telemetry::profile::{parse_spans_jsonl, Profile};
use syseco::telemetry::report::{parse_metrics_json, render, MetricsDoc, ReportOptions};
use syseco::{Budget, EcoOptions, ProgressEvent, Session, Telemetry};

fn load(path: &str) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    read_blif(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  syseco stats   <design.blif>\n  syseco check   <impl.blif> <spec.blif>\n  \
         syseco rectify <impl.blif> <spec.blif> [--engine syseco|deltasyn|cone]\n                 \
         [--out patched.blif] [--seed N] [--samples N] [--level-driven]\n                 \
         [--timeout SECS] [--jobs N] [--progress]\n                 \
         [--cache-dir DIR] [--cache off|ro|rw] [--checkpoint-dir DIR]\n                 \
         [--trace-out FILE] [--metrics-out FILE]\n                 \
         [--report-out FILE] [--openmetrics-out FILE] [--log-format human|json]\n  \
         syseco report  <trace.jsonl> [--metrics metrics.json] [--out FILE]\n                 \
         [--wall-clock] [--title STRING]"
    );
    ExitCode::from(2)
}

/// Machine-readable progress: one JSON object per line on stderr
/// (`--progress --log-format json`).
fn print_progress_json(event: &ProgressEvent) {
    eprintln!("{}", event.to_json());
}

/// Live per-cone status lines on stderr (`--progress`).
fn print_progress(event: &ProgressEvent) {
    match event {
        ProgressEvent::RunStarted {
            outputs_total,
            outputs_failing,
            jobs,
        } => eprintln!(
            "[syseco] {outputs_failing} of {outputs_total} outputs failing, {jobs} worker(s)"
        ),
        ProgressEvent::OutputStarted {
            output,
            position,
            failing_total,
        } => eprintln!(
            "[syseco] [{}/{failing_total}] {output}: searching",
            position + 1
        ),
        ProgressEvent::OutputSearched {
            output,
            position,
            search,
            proposal,
        } => eprintln!(
            "[syseco] [{}] {output}: search finished in {search:.1?} ({})",
            position + 1,
            if *proposal {
                "proposal found"
            } else {
                "fallback needed"
            }
        ),
        ProgressEvent::OutputRectified {
            output,
            action,
            degraded,
            ..
        } => eprintln!(
            "[syseco] {output}: {action}{}",
            if *degraded { " (degraded)" } else { "" }
        ),
        ProgressEvent::RunFinished {
            duration,
            degradations,
        } => eprintln!("[syseco] run finished in {duration:.1?}, {degradations} degradation(s)"),
        _ => {}
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Ok(usage());
    };
    match command.as_str() {
        "stats" => {
            let [_, path] = args else { return Ok(usage()) };
            let c = load(path)?;
            println!("{}: {}", c.name(), CircuitStats::of(&c));
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let [_, impl_path, spec_path] = args else {
                return Ok(usage());
            };
            let implementation = load(impl_path)?;
            let spec = load(spec_path)?;
            let corr = Correspondence::build(&implementation, &spec).map_err(|e| e.to_string())?;
            let verdicts = classify_outputs(&implementation, &spec, &corr, None, None)
                .map_err(|e| e.to_string())?;
            let mut failing = 0;
            for (pair, verdict) in corr.outputs.iter().zip(&verdicts) {
                match verdict {
                    Equivalence::Equivalent => {}
                    Equivalence::Counterexample(x) => {
                        failing += 1;
                        println!("output {:<24} DIFFERS  (witness {:?})", pair.name, x);
                    }
                    Equivalence::Unknown => {
                        failing += 1;
                        println!("output {:<24} UNKNOWN", pair.name);
                    }
                }
            }
            println!("{} of {} outputs differ", failing, corr.outputs.len());
            Ok(if failing == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "rectify" => {
            if args.len() < 3 {
                return Ok(usage());
            }
            let implementation = load(&args[1])?;
            let spec = load(&args[2])?;
            let mut engine_name = "syseco".to_string();
            let mut out_path: Option<String> = None;
            let mut trace_out: Option<String> = None;
            let mut metrics_out: Option<String> = None;
            let mut report_out: Option<String> = None;
            let mut openmetrics_out: Option<String> = None;
            let mut cache_dir: Option<String> = None;
            let mut checkpoint_dir: Option<String> = None;
            let mut json_log = false;
            let mut progress = false;
            let mut builder = EcoOptions::builder();
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--engine" => {
                        engine_name = args.get(i + 1).cloned().ok_or("--engine needs a value")?;
                        i += 2;
                    }
                    "--out" => {
                        out_path = Some(args.get(i + 1).cloned().ok_or("--out needs a value")?);
                        i += 2;
                    }
                    "--trace-out" => {
                        trace_out = Some(
                            args.get(i + 1)
                                .cloned()
                                .ok_or("--trace-out needs a value")?,
                        );
                        i += 2;
                    }
                    "--metrics-out" => {
                        metrics_out = Some(
                            args.get(i + 1)
                                .cloned()
                                .ok_or("--metrics-out needs a value")?,
                        );
                        i += 2;
                    }
                    "--report-out" => {
                        report_out = Some(
                            args.get(i + 1)
                                .cloned()
                                .ok_or("--report-out needs a value")?,
                        );
                        i += 2;
                    }
                    "--openmetrics-out" => {
                        openmetrics_out = Some(
                            args.get(i + 1)
                                .cloned()
                                .ok_or("--openmetrics-out needs a value")?,
                        );
                        i += 2;
                    }
                    "--log-format" => {
                        match args
                            .get(i + 1)
                            .ok_or("--log-format needs a value")?
                            .as_str()
                        {
                            "human" => json_log = false,
                            "json" => json_log = true,
                            other => {
                                return Err(format!(
                                    "unknown log format {other:?} (expected human or json)"
                                ))
                            }
                        }
                        i += 2;
                    }
                    "--seed" => {
                        builder = builder.seed(
                            args.get(i + 1)
                                .ok_or("--seed needs a value")?
                                .parse()
                                .map_err(|e| format!("bad seed: {e}"))?,
                        );
                        i += 2;
                    }
                    "--samples" => {
                        builder = builder.num_samples(
                            args.get(i + 1)
                                .ok_or("--samples needs a value")?
                                .parse()
                                .map_err(|e| format!("bad sample count: {e}"))?,
                        );
                        i += 2;
                    }
                    "--jobs" => {
                        builder = builder.jobs(
                            args.get(i + 1)
                                .ok_or("--jobs needs a value")?
                                .parse()
                                .map_err(|e| format!("bad job count: {e}"))?,
                        );
                        i += 2;
                    }
                    "--cache-dir" => {
                        cache_dir = Some(
                            args.get(i + 1)
                                .cloned()
                                .ok_or("--cache-dir needs a value")?,
                        );
                        builder = builder.cache_dir(cache_dir.clone().unwrap());
                        i += 2;
                    }
                    "--checkpoint-dir" => {
                        checkpoint_dir = Some(
                            args.get(i + 1)
                                .cloned()
                                .ok_or("--checkpoint-dir needs a value")?,
                        );
                        builder = builder.checkpoint_dir(checkpoint_dir.clone().unwrap());
                        i += 2;
                    }
                    "--cache" => {
                        let mode: syseco::CacheMode = args
                            .get(i + 1)
                            .ok_or("--cache needs a value")?
                            .parse()
                            .map_err(|e| format!("bad cache mode: {e}"))?;
                        builder = builder.cache_mode(mode);
                        i += 2;
                    }
                    "--level-driven" => {
                        builder = builder.level_driven(true);
                        i += 1;
                    }
                    "--progress" => {
                        progress = true;
                        i += 1;
                    }
                    "--timeout" => {
                        let secs: f64 = args
                            .get(i + 1)
                            .ok_or("--timeout needs a value")?
                            .parse()
                            .map_err(|e| format!("bad timeout: {e}"))?;
                        if !secs.is_finite() || secs <= 0.0 {
                            return Err("timeout must be a positive number of seconds".into());
                        }
                        builder = builder.timeout(std::time::Duration::from_secs_f64(secs));
                        i += 2;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let options = builder.build();
            let timeout = options.timeout;
            let telemetry_requested = trace_out.is_some()
                || metrics_out.is_some()
                || report_out.is_some()
                || openmetrics_out.is_some();
            if telemetry_requested && engine_name != "syseco" {
                return Err(format!(
                    "--trace-out/--metrics-out/--report-out/--openmetrics-out require \
                     --engine syseco, got {engine_name:?}"
                ));
            }
            if cache_dir.is_some() && engine_name != "syseco" {
                return Err(format!(
                    "--cache-dir requires --engine syseco, got {engine_name:?}"
                ));
            }
            if checkpoint_dir.is_some() && engine_name != "syseco" {
                return Err(format!(
                    "--checkpoint-dir requires --engine syseco, got {engine_name:?}"
                ));
            }
            let telemetry = if telemetry_requested {
                Telemetry::enabled()
            } else {
                Telemetry::disabled()
            };
            let result = match engine_name.as_str() {
                "syseco" => {
                    let mut session = Session::new(options).with_telemetry(&telemetry);
                    if progress {
                        session = if json_log {
                            session.on_progress(print_progress_json)
                        } else {
                            session.on_progress(print_progress)
                        };
                    }
                    session
                        .run(&implementation, &spec)
                        .map_err(|e| e.to_string())?
                }
                "deltasyn" => {
                    deltasyn::rectify(&implementation, &spec).map_err(|e| e.to_string())?
                }
                "cone" => cone::rectify(&implementation, &spec).map_err(|e| e.to_string())?,
                other => return Err(format!("unknown engine {other:?}")),
            };
            if let Some(path) = &trace_out {
                let rendered = if path.ends_with(".jsonl") {
                    spans_jsonl(&result.trace, false)
                } else {
                    chrome_trace(&result.trace)
                };
                std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("trace written to {path} ({} spans)", result.trace.len());
            }
            if let Some(path) = &metrics_out {
                std::fs::write(path, metrics_json(&telemetry.snapshot()))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("metrics written to {path}");
            }
            if let Some(path) = &openmetrics_out {
                std::fs::write(path, openmetrics(&telemetry.snapshot()))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("openmetrics written to {path}");
            }
            if let Some(path) = &report_out {
                let profile = Profile::from_spans(&result.trace);
                let doc = MetricsDoc::from(&telemetry.snapshot());
                let rendered = render(&profile, &doc, &ReportOptions::default());
                std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("run report written to {path}");
            }
            println!("engine {engine_name} finished in {:?}", result.runtime);
            if cache_dir.is_some() {
                let r = &result.rectify;
                println!(
                    "cache: {} hit(s), {} miss(es), {} verify-reject(s), {} corrupt segment(s)",
                    r.cache_hits, r.cache_misses, r.cache_verify_rejects, r.cache_corrupt_segments
                );
            }
            if checkpoint_dir.is_some() {
                let r = &result.rectify;
                println!(
                    "checkpoint: {} output(s) resumed, {} record(s) written",
                    r.checkpoint_hits, r.checkpoint_writes
                );
            }
            print!(
                "{}",
                syseco::patch::render_report(&result.patch, &result.patched)
            );
            let degradations = &result.rectify.degradations;
            if !degradations.is_empty() {
                println!("degraded outputs ({}):", degradations.len());
                for d in degradations {
                    println!("  {d}");
                }
            }
            // Verification gets its own budget window, so even a timed-out
            // run terminates within roughly twice the requested timeout.
            let verify_budget = match timeout {
                Some(t) => Budget::with_deadline(t),
                None => Budget::unlimited(),
            };
            let corr = Correspondence::build(&result.patched, &spec).map_err(|e| e.to_string())?;
            let verdicts =
                classify_outputs(&result.patched, &spec, &corr, None, Some(&verify_budget))
                    .map_err(|e| e.to_string())?;
            let differs = verdicts
                .iter()
                .filter(|v| matches!(v, Equivalence::Counterexample(_)))
                .count();
            let unknown = verdicts
                .iter()
                .filter(|v| matches!(v, Equivalence::Unknown))
                .count();
            if differs > 0 {
                println!("verification: FAIL ({differs} outputs differ)");
            } else if unknown > 0 {
                println!("verification: UNKNOWN ({unknown} outputs unresolved within budget)");
            } else {
                println!("verification: PASS");
            }
            if let Some(path) = out_path {
                std::fs::write(&path, write_blif(&result.patched))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("patched design written to {path}");
            }
            Ok(if differs > 0 {
                ExitCode::FAILURE
            } else if unknown > 0 || !degradations.is_empty() {
                // Degraded but honest: every output the patch claims to fix
                // verified equivalent, yet the run was cut short somewhere.
                ExitCode::from(3)
            } else {
                ExitCode::SUCCESS
            })
        }
        "report" => {
            if args.len() < 2 {
                return Ok(usage());
            }
            let trace_path = &args[1];
            let mut metrics_path: Option<String> = None;
            let mut out_path: Option<String> = None;
            let mut options = ReportOptions::default();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--metrics" => {
                        metrics_path =
                            Some(args.get(i + 1).cloned().ok_or("--metrics needs a value")?);
                        i += 2;
                    }
                    "--out" => {
                        out_path = Some(args.get(i + 1).cloned().ok_or("--out needs a value")?);
                        i += 2;
                    }
                    "--title" => {
                        options.title =
                            Some(args.get(i + 1).cloned().ok_or("--title needs a value")?);
                        i += 2;
                    }
                    "--wall-clock" => {
                        options.wall_clock = true;
                        i += 1;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let trace_text = std::fs::read_to_string(trace_path)
                .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
            let spans = parse_spans_jsonl(&trace_text)
                .map_err(|e| format!("cannot parse {trace_path}: {e}"))?;
            let profile = Profile::from_owned(spans);
            let doc = match &metrics_path {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    parse_metrics_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))?
                }
                None => MetricsDoc::default(),
            };
            let rendered = render(&profile, &doc, &options);
            match out_path {
                Some(path) => {
                    std::fs::write(&path, rendered)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("run report written to {path}");
                }
                None => print!("{rendered}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}
