//! Error type for the rectification engine.

use std::error::Error;
use std::fmt;

use eco_bdd::BddError;
use eco_netlist::NetlistError;

/// Errors produced by the syseco engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum EcoError {
    /// The implementation and specification disagree on port structure in a
    /// way that cannot be reconciled (e.g. an output present only in the
    /// implementation).
    PortMismatch(String),
    /// A netlist operation failed.
    Netlist(NetlistError),
    /// A BDD computation exceeded its node budget.
    Bdd(BddError),
    /// The engine could not rectify an output within its resource limits
    /// (should not happen: the output-rewire fallback is always applicable).
    RectificationFailed {
        /// Label of the output that resisted rectification.
        output: String,
    },
    /// A sampling domain was constructed from zero samples. An empty domain
    /// quantifies over nothing, which would make every rectification
    /// vacuously feasible, so construction rejects it up front.
    EmptySamplingDomain,
    /// An active fault plan aborted the run, simulating a hard crash
    /// (SIGKILL) at a span boundary: nothing further was written and the
    /// run must be resumable from its checkpoint directory. Only
    /// constructed under `cfg(test)` or the `fault-injection` feature.
    #[cfg(any(test, feature = "fault-injection"))]
    InjectedAbort,
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::PortMismatch(msg) => write!(f, "port mismatch: {msg}"),
            EcoError::Netlist(e) => write!(f, "netlist error: {e}"),
            EcoError::Bdd(e) => write!(f, "bdd error: {e}"),
            EcoError::RectificationFailed { output } => {
                write!(f, "failed to rectify output {output:?}")
            }
            EcoError::EmptySamplingDomain => {
                write!(f, "sampling domain must not be empty")
            }
            #[cfg(any(test, feature = "fault-injection"))]
            EcoError::InjectedAbort => {
                write!(f, "injected abort (simulated crash) from the fault plan")
            }
        }
    }
}

impl Error for EcoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EcoError::Netlist(e) => Some(e),
            EcoError::Bdd(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<NetlistError> for EcoError {
    fn from(e: NetlistError) -> Self {
        EcoError::Netlist(e)
    }
}

#[doc(hidden)]
impl From<BddError> for EcoError {
    fn from(e: BddError) -> Self {
        EcoError::Bdd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let cases = [
            EcoError::PortMismatch("x".into()),
            EcoError::Netlist(NetlistError::Cyclic),
            EcoError::Bdd(BddError::NodeLimit { limit: 1 }),
            EcoError::RectificationFailed { output: "y".into() },
            EcoError::EmptySamplingDomain,
            EcoError::InjectedAbort,
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EcoError>();
    }
}
