//! Feasible rectification point-sets (paper §4.2).
//!
//! Every candidate sink pin `q_j` is guarded by a conceptual multiplexer
//! (Figure 2): selection variables `t_i` — one binary-encoded block per
//! rectification point `y_i` — steer which pins become free inputs. The
//! characteristic function
//!
//! ```text
//! H(t) = ∀x ∃y ( h(x, y, t) ≡ f'(x) )
//! ```
//!
//! computed here in the sampling domain (`x` overloaded with `g(z)`),
//! describes *all* feasible point-sets of size at most `m`; its prime cubes
//! seed the explicit candidate lists handed to the rewiring-choice search.

use std::collections::HashMap;

use eco_bdd::{Bdd, BddError, BddManager, Cube};
use eco_netlist::{topo, Circuit, GateKind, NetId, NodeId, Pin};

use crate::sampling::eval_cone_bdd;

/// Collects candidate rectification pins for the cone of `root`:
/// every gate input pin whose consumer lies in the cone, plus the output
/// pin itself (`output_index`), capped at `max` pins.
///
/// Pins are ordered by proximity to the output (shallow consumers first) so
/// the cap keeps the most "surgical" candidates, with the output pin always
/// included last — it guarantees completeness of the rewire formulation
/// (§3.3).
pub fn candidate_pins(circuit: &Circuit, root: NetId, output_index: u32, max: usize) -> Vec<Pin> {
    let in_cone = topo::tfi(circuit, &[root.source()]);
    let levels = topo::levels(circuit).expect("engine guarantees acyclic circuits");
    let root_level = levels[root.index()];
    let mut pins: Vec<(u32, Pin)> = Vec::new();
    for (i, &inside) in in_cone.iter().enumerate() {
        if !inside {
            continue;
        }
        let id = NodeId::from_index(i);
        let node = circuit.node(id);
        if node.kind() == GateKind::Input || node.kind().is_const() {
            continue;
        }
        // Depth from the output: shallower consumers first.
        let depth = root_level.saturating_sub(levels[i]);
        for pos in 0..node.fanins().len() {
            pins.push((depth, Pin::gate(id, pos as u8)));
        }
    }
    pins.sort_by_key(|&(depth, pin)| (depth, pin));
    let mut out: Vec<Pin> = pins
        .into_iter()
        .map(|(_, p)| p)
        .take(max.saturating_sub(1))
        .collect();
    out.push(Pin::output(output_index));
    out
}

/// The `t`-variable blocks of the parameterized selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// First `t` variable index.
    pub t_base: u32,
    /// Bits per block: `⌈log2 M⌉`.
    pub bits_per_block: u32,
    /// Number of rectification points `m` (one block each).
    pub num_points: usize,
    /// Number of candidate pins `M`.
    pub num_pins: usize,
}

impl Selection {
    /// Creates the encoding for `num_points` points over `num_pins` pins.
    pub fn new(t_base: u32, num_points: usize, num_pins: usize) -> Self {
        let bits = usize::BITS - (num_pins.max(2) - 1).leading_zeros();
        Selection {
            t_base,
            bits_per_block: bits,
            num_points,
            num_pins,
        }
    }

    /// Total `t` variables: `m · ⌈log2 M⌉` (the count derived in §4.2).
    pub fn num_t_vars(&self) -> u32 {
        self.bits_per_block * self.num_points as u32
    }

    /// The variable indices of block `i`.
    pub fn block_vars(&self, i: usize) -> Vec<u32> {
        let start = self.t_base + self.bits_per_block * i as u32;
        (start..start + self.bits_per_block).collect()
    }

    /// The minterm `t_i^j` ("big-endian" bit order, §4.1).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn minterm(&self, m: &mut BddManager, block: usize, code: usize) -> Result<Bdd, BddError> {
        let vars = self.block_vars(block);
        let bits = self.bits_per_block;
        let mut cube = m.one();
        for (b, &var) in vars.iter().enumerate() {
            let bit = (code >> (bits as usize - 1 - b)) & 1 == 1;
            let lit = if bit { m.var(var) } else { m.nvar(var) };
            cube = m.and(cube, lit)?;
        }
        Ok(cube)
    }

    /// The selection signal of pin `j`: `t_1^j ∨ … ∨ t_m^j`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn select(&self, m: &mut BddManager, pin_code: usize) -> Result<Bdd, BddError> {
        let mut sel = m.zero();
        for i in 0..self.num_points {
            let t = self.minterm(m, i, pin_code)?;
            sel = m.or(sel, t)?;
        }
        Ok(sel)
    }

    /// The data-1 expression of pin `j`: `(t_1^j → y_1) ∧ … ∧ (t_m^j → y_m)`
    /// (merging multiple selections of the same pin, §4.2).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn data1(&self, m: &mut BddManager, pin_code: usize, y_base: u32) -> Result<Bdd, BddError> {
        let mut acc = m.one();
        for i in 0..self.num_points {
            let t = self.minterm(m, i, pin_code)?;
            let nt = m.not(t)?;
            let y = m.var(y_base + i as u32);
            let imp = m.or(nt, y)?;
            acc = m.and(acc, imp)?;
        }
        Ok(acc)
    }
}

/// A decoded candidate point-set: the pins a prime cube of `H(t)` admits.
pub type PointSet = Vec<Pin>;

/// Computes `H(t)` in the sampling domain and decodes its prime cubes into
/// explicit candidate point-sets.
///
/// Arguments:
/// * `input_fns` — sampling functions `g(z)` in implementation input order,
/// * `fprime` — the revised output function `f'(g(z))` over `z`,
/// * `pins` — candidate pins from [`candidate_pins`],
/// * `y_base` — first `y` variable (one per point, allocated by the caller
///   so that `y` sits between `t` and `z` in the order),
/// * `z_cube`/`y_cube` — quantification cubes.
///
/// Returns point-sets sorted by size (smallest first), each satisfying the
/// topological constraint of §3.3 (no path between any pair of pins).
///
/// # Errors
///
/// [`BddError::NodeLimit`] when the manager budget is exhausted — callers
/// retry with fewer candidate pins or fall back to output rewiring.
#[allow(clippy::too_many_arguments)]
pub fn feasible_point_sets(
    circuit: &Circuit,
    m: &mut BddManager,
    input_fns: &[Bdd],
    fprime: Bdd,
    root: NetId,
    output_index: u32,
    pins: &[Pin],
    selection: &Selection,
    y_base: u32,
    max_point_sets: usize,
    max_decodes_per_prime: usize,
) -> Result<Vec<PointSet>, BddError> {
    // Precompute per-pin selection and data-1 functions.
    let mut sels = Vec::with_capacity(pins.len());
    let mut data1s = Vec::with_capacity(pins.len());
    for j in 0..pins.len() {
        sels.push(selection.select(m, j)?);
        data1s.push(selection.data1(m, j, y_base)?);
    }

    // Parameterized evaluation: every candidate gate pin is guarded by
    // ite(sel_j, data1_j, original) — the MUX of Figure 2.
    let mut pin_subst: HashMap<Pin, usize> = HashMap::new();
    let mut output_pin_code: Option<usize> = None;
    for (j, &pin) in pins.iter().enumerate() {
        match pin {
            Pin::Gate { .. } => {
                pin_subst.insert(pin, j);
            }
            Pin::Output { index } if index == output_index => {
                output_pin_code = Some(j);
            }
            Pin::Output { .. } => {}
        }
    }
    let mut subst = |mgr: &mut BddManager, j: usize, orig: Bdd| -> Result<Bdd, BddError> {
        mgr.ite(sels[j], data1s[j], orig)
    };
    let mut h = eval_cone_bdd(circuit, m, input_fns, root, &pin_subst, &mut subst)?;
    if let Some(j) = output_pin_code {
        h = m.ite(sels[j], data1s[j], h)?;
    }

    // H(t) = ∀z ∃y (h ≡ f').
    let eq = m.iff(h, fprime)?;
    let y_vars: Vec<u32> = (0..selection.num_points)
        .map(|i| y_base + i as u32)
        .collect();
    let y_cube = m.var_cube(&y_vars)?;
    let exists_y = m.exists(eq, y_cube)?;
    let z_vars: Vec<u32> = collect_z_vars(m, input_fns, fprime);
    let z_cube = m.var_cube(&z_vars)?;
    let h_char = m.forall(exists_y, z_cube)?;

    if h_char == m.zero() {
        return Ok(Vec::new());
    }

    // Prime cubes of H(t) seed the explicit point-set list.
    let primes = m.prime_cubes(h_char, max_point_sets)?;
    let mut out: Vec<PointSet> = Vec::new();
    for prime in &primes {
        for decoded in decode_prime(selection, prime, pins, max_decodes_per_prime) {
            if decoded.is_empty() {
                continue;
            }
            if !topological_constraint_ok(circuit, &decoded, output_index) {
                continue;
            }
            if !out.contains(&decoded) {
                out.push(decoded);
            }
        }
    }
    out.sort_by_key(|ps| ps.len());
    Ok(out)
}

/// Variables used by the sampling functions and `f'` — the `z` block.
fn collect_z_vars(m: &BddManager, input_fns: &[Bdd], fprime: Bdd) -> Vec<u32> {
    let mut vars = std::collections::BTreeSet::new();
    let mut stack: Vec<Bdd> = input_fns.iter().copied().chain([fprime]).collect();
    let mut seen = std::collections::HashSet::new();
    while let Some(f) = stack.pop() {
        if m.is_const(f) || !seen.insert(f) {
            continue;
        }
        if let Some(v) = m.root_var(f) {
            vars.insert(v);
        }
        stack.push(m.low(f));
        stack.push(m.high(f));
    }
    vars.into_iter().collect()
}

/// Decodes one prime cube of `H(t)` into concrete point-sets.
///
/// For each `t` block, the cube's literals admit a set of pin codes; codes
/// beyond the pin count mean "this point selects nothing". Up to `max`
/// combinations of admissible codes are instantiated.
fn decode_prime(selection: &Selection, prime: &Cube, pins: &[Pin], max: usize) -> Vec<PointSet> {
    let bits = selection.bits_per_block as usize;
    // Admissible codes per block. `None` entry = point unused.
    let mut per_block: Vec<Vec<Option<usize>>> = Vec::with_capacity(selection.num_points);
    for i in 0..selection.num_points {
        let vars = selection.block_vars(i);
        let mut admissible = Vec::new();
        'code: for code in 0..(1usize << bits) {
            for (b, &var) in vars.iter().enumerate() {
                let bit = (code >> (bits - 1 - b)) & 1 == 1;
                if let Some(phase) = prime.phase(var) {
                    if phase != bit {
                        continue 'code;
                    }
                }
            }
            admissible.push(if code < pins.len() { Some(code) } else { None });
        }
        // Prefer concrete pins over "unused", and low codes (shallow pins)
        // first; a fully unconstrained block contributes only its first few
        // options to avoid blow-up.
        admissible.sort_by_key(|c| match c {
            Some(j) => *j,
            None => usize::MAX,
        });
        admissible.dedup();
        admissible.truncate(max.max(1));
        per_block.push(admissible);
    }
    // Cartesian product, truncated at `max` results.
    let mut results: Vec<PointSet> = Vec::new();
    let mut counters = vec![0usize; per_block.len()];
    'outer: loop {
        let mut set: PointSet = Vec::new();
        for (i, &k) in counters.iter().enumerate() {
            if let Some(code) = per_block[i][k] {
                let pin = pins[code];
                if !set.contains(&pin) {
                    set.push(pin);
                }
            }
        }
        set.sort();
        if !results.contains(&set) {
            results.push(set);
            if results.len() >= max {
                break;
            }
        }
        // Odometer increment.
        for i in (0..counters.len()).rev() {
            counters[i] += 1;
            if counters[i] < per_block[i].len() {
                continue 'outer;
            }
            counters[i] = 0;
        }
        break;
    }
    results
}

/// Checks the topological constraint of §3.3: no path may connect any pair
/// of the selected pins. The output pin is downstream of the whole cone, so
/// it only ever appears in singleton sets.
pub fn topological_constraint_ok(circuit: &Circuit, pins: &[Pin], output_index: u32) -> bool {
    let _ = output_index;
    for (a, &pa) in pins.iter().enumerate() {
        for &pb in pins.iter().skip(a + 1) {
            match (pa.node(), pb.node()) {
                (Some(na), Some(nb)) => {
                    // Sibling pins of one gate are path-free; a path between
                    // distinct pins exists iff one consumer reaches the other
                    // through its output.
                    if na != nb
                        && (topo::tfi_contains(circuit, na, nb)
                            || topo::tfi_contains(circuit, nb, na))
                    {
                        return false;
                    }
                }
                // An output pin paired with anything inside the cone is
                // connected by a path by definition.
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{eval_all_bdd, SamplingDomain};
    use eco_netlist::{Circuit, GateKind};

    /// impl: y = a AND b (wrong); spec: y = a OR b.
    fn and_vs_or() -> (Circuit, Circuit) {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let mut s = Circuit::new("spec");
        let a = s.add_input("a");
        let b = s.add_input("b");
        let g = s.add_gate(GateKind::Or, &[a, b]).unwrap();
        s.add_output("y", g);
        (c, s)
    }

    #[test]
    fn candidate_pins_include_output_last() {
        let (c, _) = and_vs_or();
        let root = c.outputs()[0].net();
        let pins = candidate_pins(&c, root, 0, 8);
        assert_eq!(*pins.last().unwrap(), Pin::output(0));
        assert_eq!(pins.len(), 3); // two AND pins + output pin
    }

    #[test]
    fn candidate_pins_respect_cap() {
        let mut c = Circuit::new("big");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let mut w = a;
        for _ in 0..20 {
            w = c.add_gate(GateKind::And, &[w, b]).unwrap();
        }
        c.add_output("y", w);
        let pins = candidate_pins(&c, w, 0, 10);
        assert_eq!(pins.len(), 10);
        assert_eq!(*pins.last().unwrap(), Pin::output(0));
    }

    #[test]
    fn selection_encoding_counts() {
        let sel = Selection::new(4, 3, 10);
        assert_eq!(sel.bits_per_block, 4);
        assert_eq!(sel.num_t_vars(), 12);
        assert_eq!(sel.block_vars(1), vec![8, 9, 10, 11]);
    }

    #[test]
    fn selection_minterms_are_disjoint() {
        let mut m = BddManager::new();
        let sel = Selection::new(0, 2, 4);
        let t00 = sel.minterm(&mut m, 0, 0).unwrap();
        let t01 = sel.minterm(&mut m, 0, 1).unwrap();
        assert_eq!(m.and(t00, t01).unwrap(), m.zero());
        // All codes of a block cover the space.
        let mut cover = m.zero();
        for code in 0..4 {
            let t = sel.minterm(&mut m, 0, code).unwrap();
            cover = m.or(cover, t).unwrap();
        }
        assert_eq!(cover, m.one());
    }

    /// End-to-end: H(t) over the and-vs-or example must admit rectification
    /// at a single point (either AND pin rewired appropriately, or the
    /// output itself).
    #[test]
    fn point_sets_found_for_simple_revision() {
        let (c, s) = and_vs_or();
        let root = c.outputs()[0].net();
        let mut m = BddManager::new();
        // Error domain of and-vs-or: a != b. Use both samples.
        let samples = vec![vec![true, false], vec![false, true]];
        // Allocate: t at 0.., y after, z last.
        let pins = candidate_pins(&c, root, 0, 8);
        let sel = Selection::new(0, 1, pins.len());
        let y_base = sel.t_base + sel.num_t_vars();
        let z_base = y_base + 1;
        let dom = SamplingDomain::new(samples, z_base).unwrap();
        let g = dom.input_functions(&mut m, 2).unwrap();
        // Spec shares input order here.
        let spec_vals = eval_all_bdd(&s, &mut m, &g).unwrap();
        let fprime = spec_vals[s.outputs()[0].net().index()];
        let sets = feasible_point_sets(&c, &mut m, &g, fprime, root, 0, &pins, &sel, y_base, 8, 4)
            .unwrap();
        assert!(!sets.is_empty(), "a single free pin can fix and→or");
        for set in &sets {
            assert_eq!(set.len(), 1, "m=1 yields singletons: {set:?}");
        }
    }

    /// With zero rectification points feasible (m too small is impossible
    /// here since output pin always works at m=1), an equivalent pair gives
    /// the empty-prime universal solution.
    #[test]
    fn equivalent_pair_admits_trivial_selection() {
        let (c, _) = and_vs_or();
        let s = c.clone();
        let root = c.outputs()[0].net();
        let mut m = BddManager::new();
        let samples = vec![vec![true, true], vec![false, true]];
        let pins = candidate_pins(&c, root, 0, 8);
        let sel = Selection::new(0, 1, pins.len());
        let y_base = sel.t_base + sel.num_t_vars();
        let dom = SamplingDomain::new(samples, y_base + 1).unwrap();
        let g = dom.input_functions(&mut m, 2).unwrap();
        let spec_vals = eval_all_bdd(&s, &mut m, &g).unwrap();
        let fprime = spec_vals[s.outputs()[0].net().index()];
        let sets = feasible_point_sets(&c, &mut m, &g, fprime, root, 0, &pins, &sel, y_base, 8, 4)
            .unwrap();
        // H(t) is a tautology here; whatever decodes must satisfy the
        // topological constraint and reference known pins.
        for set in &sets {
            assert!(topological_constraint_ok(&c, set, 0));
            for p in set {
                assert!(pins.contains(p));
            }
        }
    }

    #[test]
    fn topological_constraint_rejects_chained_pins() {
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, &[g1, b]).unwrap();
        c.add_output("y", g2);
        // Pins on g1 and g2: g1 feeds g2, so the pair is rejected.
        let p1 = Pin::gate(g1.source(), 0);
        let p2 = Pin::gate(g2.source(), 0);
        assert!(!topological_constraint_ok(&c, &[p1, p2], 0));
        // Sibling pins of the same gate have no path between them.
        let p3 = Pin::gate(g2.source(), 1);
        assert!(topological_constraint_ok(&c, &[p2, p3], 0));
        // Output pin combined with a gate pin is rejected.
        assert!(!topological_constraint_ok(&c, &[p1, Pin::output(0)], 0));
    }
}
