//! Feasible rectification point-sets (paper §4.2).
//!
//! Every candidate sink pin `q_j` is guarded by a conceptual multiplexer
//! (Figure 2): selection variables `t_i` — one binary-encoded block per
//! rectification point `y_i` — steer which pins become free inputs. The
//! characteristic function
//!
//! ```text
//! H(t) = ∀x ∃y ( h(x, y, t) ≡ f'(x) )
//! ```
//!
//! computed here in the sampling domain (`x` overloaded with `g(z)`),
//! describes *all* feasible point-sets of size at most `m`; its prime cubes
//! seed the explicit candidate lists handed to the rewiring-choice search.

use std::collections::HashMap;

use eco_bdd::{Bdd, BddError, BddManager, Cube};
use eco_netlist::{topo, Circuit, GateKind, NetId, NodeId, Pin};

use crate::sampling::apply_gate_bdd;

/// Collects candidate rectification pins for the cone of `root`:
/// every gate input pin whose consumer lies in the cone, plus the output
/// pin itself (`output_index`), capped at `max` pins.
///
/// Pins are ordered by proximity to the output (shallow consumers first) so
/// the cap keeps the most "surgical" candidates, with the output pin always
/// included last — it guarantees completeness of the rewire formulation
/// (§3.3).
pub fn candidate_pins(circuit: &Circuit, root: NetId, output_index: u32, max: usize) -> Vec<Pin> {
    let in_cone = topo::tfi(circuit, &[root.source()]);
    let levels = topo::levels(circuit).expect("engine guarantees acyclic circuits");
    let root_level = levels[root.index()];
    let mut pins: Vec<(u32, Pin)> = Vec::new();
    for (i, &inside) in in_cone.iter().enumerate() {
        if !inside {
            continue;
        }
        let id = NodeId::from_index(i);
        let node = circuit.node(id);
        if node.kind() == GateKind::Input || node.kind().is_const() {
            continue;
        }
        // Depth from the output: shallower consumers first.
        let depth = root_level.saturating_sub(levels[i]);
        for pos in 0..node.fanins().len() {
            pins.push((depth, Pin::gate(id, pos as u8)));
        }
    }
    pins.sort_by_key(|&(depth, pin)| (depth, pin));
    let mut out: Vec<Pin> = pins
        .into_iter()
        .map(|(_, p)| p)
        .take(max.saturating_sub(1))
        .collect();
    out.push(Pin::output(output_index));
    out
}

/// The `t`-variable blocks of the parameterized selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// First `t` variable index.
    pub t_base: u32,
    /// Bits per block: `⌈log2 M⌉`.
    pub bits_per_block: u32,
    /// Number of rectification points `m` (one block each).
    pub num_points: usize,
    /// Number of candidate pins `M`.
    pub num_pins: usize,
}

impl Selection {
    /// Creates the encoding for `num_points` points over `num_pins` pins.
    pub fn new(t_base: u32, num_points: usize, num_pins: usize) -> Self {
        let bits = usize::BITS - (num_pins.max(2) - 1).leading_zeros();
        Selection {
            t_base,
            bits_per_block: bits,
            num_points,
            num_pins,
        }
    }

    /// Total `t` variables: `m · ⌈log2 M⌉` (the count derived in §4.2).
    pub fn num_t_vars(&self) -> u32 {
        self.bits_per_block * self.num_points as u32
    }

    /// The variable indices of block `i`.
    pub fn block_vars(&self, i: usize) -> Vec<u32> {
        let start = self.t_base + self.bits_per_block * i as u32;
        (start..start + self.bits_per_block).collect()
    }

    /// The minterm `t_i^j` ("big-endian" bit order, §4.1).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn minterm(&self, m: &mut BddManager, block: usize, code: usize) -> Result<Bdd, BddError> {
        let vars = self.block_vars(block);
        let bits = self.bits_per_block;
        let mut cube = m.one();
        for (b, &var) in vars.iter().enumerate() {
            let bit = (code >> (bits as usize - 1 - b)) & 1 == 1;
            let lit = if bit { m.var(var) } else { m.nvar(var) };
            cube = m.and(cube, lit)?;
        }
        Ok(cube)
    }

    /// The selection signal of pin `j`: `t_1^j ∨ … ∨ t_m^j`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn select(&self, m: &mut BddManager, pin_code: usize) -> Result<Bdd, BddError> {
        let mut sel = m.zero();
        for i in 0..self.num_points {
            let t = self.minterm(m, i, pin_code)?;
            sel = m.or(sel, t)?;
        }
        Ok(sel)
    }

    /// The data-1 expression of pin `j`: `(t_1^j → y_1) ∧ … ∧ (t_m^j → y_m)`
    /// (merging multiple selections of the same pin, §4.2).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn data1(&self, m: &mut BddManager, pin_code: usize, y_base: u32) -> Result<Bdd, BddError> {
        let mut acc = m.one();
        for i in 0..self.num_points {
            let t = self.minterm(m, i, pin_code)?;
            let nt = m.not(t)?;
            let y = m.var(y_base + i as u32);
            let imp = m.or(nt, y)?;
            acc = m.and(acc, imp)?;
        }
        Ok(acc)
    }
}

/// A decoded candidate point-set: the pins a prime cube of `H(t)` admits.
pub type PointSet = Vec<Pin>;

/// Computes `H(t)` over the sampling domain and decodes its prime cubes
/// into explicit candidate point-sets.
///
/// `H(t) = ∀z ∃y (h(z, y, t) ≡ f'(z))` is evaluated **sample-wise**: the
/// only `z`-dependence of the parameterized cone `h` is through the
/// sampling functions `g(z)`, so restricting `z` to one code collapses
/// every unguarded signal to a constant and the universal quantifier
/// becomes a conjunction of per-sample feasibility functions
///
/// ```text
/// H(t) = ⋀_k ∃y ( h|_{x = x̂_k} ≡ f'(x̂_k) )
/// ```
///
/// each living in the small `(t, y)` space, and never materializing the
/// monolithic mixed-`(t, y, z)` diagram.
///
/// Two constructions compute that function; both yield the *same*
/// canonical BDD, so everything downstream (prime cubes, decoded sets,
/// patches) is identical:
///
/// * **Simulation-driven** (`h_char_by_simulation`): per sample, `H` at a
///   selection `t` depends only on the *set* `S` of pins `t` frees, the
///   freed pins take every value combination (distinct pins use disjoint
///   `y` variables), and feasibility is monotone in `S` — freeing an extra
///   pin can always re-drive its original value. So the minimal feasible
///   pin-sets are found with 64-wide bit-parallel cone simulation and
///   `H(t) = ⋁_S ⋀_{j∈S} sel_j(t)` is assembled from the tiny per-pin
///   selection BDDs. No per-sample BDD work at all.
/// * **Restriction-driven** (`h_char_by_restriction`): the direct
///   sample-wise conjunction above, used when `Σ_s C(|pins|, s)` exceeds
///   the enumeration budget (large `m` over many pins).
///
/// Arguments:
/// * `samples` — the domain's assignments, implementation input order,
/// * `fprime_bits` — the revised output value `f'(x̂_k)` per sample
///   (see [`SamplingDomain::code_assignment`](crate::sampling::SamplingDomain::code_assignment)),
/// * `pins` — candidate pins from [`candidate_pins`],
/// * `y_base` — first `y` variable (one per point, allocated by the caller
///   so that `y` sits between `t` and `z` in the order).
///
/// Returns point-sets sorted by size (smallest first), each satisfying the
/// topological constraint of §3.3 (no path between any pair of pins).
///
/// # Errors
///
/// [`BddError::NodeLimit`] when the manager budget is exhausted — callers
/// retry with fewer candidate pins or fall back to output rewiring.
///
/// # Panics
///
/// Panics when `fprime_bits.len() != samples.len()`.
#[allow(clippy::too_many_arguments)]
pub fn feasible_point_sets(
    circuit: &Circuit,
    m: &mut BddManager,
    samples: &[Vec<bool>],
    fprime_bits: &[bool],
    root: NetId,
    output_index: u32,
    pins: &[Pin],
    selection: &Selection,
    y_base: u32,
    max_point_sets: usize,
    max_decodes_per_prime: usize,
) -> Result<Vec<PointSet>, BddError> {
    assert_eq!(
        fprime_bits.len(),
        samples.len(),
        "one revised-output bit per sample"
    );
    let h_char = match h_char_by_simulation(
        circuit,
        m,
        samples,
        fprime_bits,
        root,
        output_index,
        pins,
        selection,
    )? {
        Some(h) => h,
        None => h_char_by_restriction(
            circuit,
            m,
            samples,
            fprime_bits,
            root,
            output_index,
            pins,
            selection,
            y_base,
        )?,
    };
    if h_char == m.zero() {
        return Ok(Vec::new());
    }

    // Prime cubes of H(t) seed the explicit point-set list.
    let primes = m.prime_cubes(h_char, max_point_sets)?;
    let mut out: Vec<PointSet> = Vec::new();
    for prime in &primes {
        for decoded in decode_prime(selection, prime, pins, max_decodes_per_prime) {
            if decoded.is_empty() {
                continue;
            }
            if !topological_constraint_ok(circuit, &decoded, output_index) {
                continue;
            }
            if !out.contains(&decoded) {
                out.push(decoded);
            }
        }
    }
    out.sort_by_key(|ps| ps.len());
    Ok(out)
}

/// Enumeration ceiling for the simulation-driven `H(t)` construction:
/// candidate pin-subsets beyond this count fall back to the BDD
/// restriction path.
const SUBSET_BUDGET: u64 = 200_000;

/// Advances `idx` to the next lexicographic `idx.len()`-combination of
/// `0..n`; returns `false` when exhausted.
fn next_combination(idx: &mut [usize], n: usize) -> bool {
    let s = idx.len();
    let mut i = s;
    while i > 0 {
        i -= 1;
        if idx[i] != i + n - s {
            idx[i] += 1;
            for k in i + 1..s {
                idx[k] = idx[k - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// The simulation-driven `H(t)` construction.
///
/// `H` at a selection `t` depends only on the set `S` of pins `t` frees:
/// distinct freed pins are driven by disjoint `y` variables (a pin chosen
/// by several blocks is driven by the conjunction of *its own* blocks'
/// `y`s), so the freed pins jointly range over all of `{0,1}^S` and
///
/// ```text
/// H(t) = 1  ⟺  ∀k ∃v ∈ {0,1}^S : cone[S←v](x̂_k) = f'(x̂_k),  S = selset(t).
/// ```
///
/// That predicate is monotone in `S` — an extra freed pin can re-drive the
/// value its driver would have produced — so `H` is determined by its
/// *minimal* feasible sets `S` (size ≤ m), found by increasing-size
/// enumeration with bit-parallel simulation, skipping every superset of a
/// set already known feasible. Then
///
/// ```text
/// H(t) = ⋁_{S minimal} ⋀_{j ∈ S} sel_j(t)
/// ```
///
/// since `⋀_{j∈S} sel_j(t) ⟺ S ⊆ selset(t)`. An output pin is trivially
/// feasible alone (drive `y = f'`); output pins of *other* outputs free
/// nothing in this cone and can never appear in a minimal set.
///
/// Returns `None` when the candidate-subset count exceeds
/// [`SUBSET_BUDGET`] — the caller falls back to the restriction path.
#[allow(clippy::too_many_arguments)]
fn h_char_by_simulation(
    circuit: &Circuit,
    m: &mut BddManager,
    samples: &[Vec<bool>],
    fprime_bits: &[bool],
    root: NetId,
    output_index: u32,
    pins: &[Pin],
    selection: &Selection,
) -> Result<Option<Bdd>, BddError> {
    let m_pts = selection.num_points;
    let gate_pins: Vec<usize> = pins
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, Pin::Gate { .. }))
        .map(|(j, _)| j)
        .collect();
    let out_code = pins
        .iter()
        .position(|p| matches!(p, Pin::Output { index } if *index == output_index));
    let depth = m_pts.min(gate_pins.len());
    if gate_pins.len() > 128 {
        return Ok(None); // u128 pin masks below
    }
    let g = gate_pins.len() as u64;
    let mut total = 0u64;
    let mut c = 1u64;
    for s in 1..=depth as u64 {
        c = c * (g - s + 1) / s;
        total = total.saturating_add(c);
        if total > SUBSET_BUDGET {
            return Ok(None);
        }
    }

    let order = topo::topo_order(circuit).expect("engine guarantees acyclic circuits");
    let in_cone = topo::tfi(circuit, &[root.source()]);
    let cone: Vec<NodeId> = order.into_iter().filter(|id| in_cone[id.index()]).collect();

    // Per-node transitive-fanout masks: bit `b` of `tfo_mask[id]` says that
    // freeing gate pin `gate_pins[b]` can change node `id` — the pin's
    // consumer itself, or anything downstream of it. Within a TFI cone
    // every node reaches the root, so the root carries every bit; for a
    // freed subset only this (typically narrow) slice needs re-simulation
    // on top of a baseline evaluated once per block.
    let mut tfo_mask = vec![0u128; circuit.num_nodes()];
    for (b, &j) in gate_pins.iter().enumerate() {
        if let Pin::Gate { node, .. } = pins[j] {
            tfo_mask[node.index()] |= 1u128 << b;
        }
    }
    for &id in &cone {
        let mut mask = tfo_mask[id.index()];
        for f in circuit.node(id).fanins() {
            mask |= tfo_mask[f.index()];
        }
        tfo_mask[id.index()] = mask;
    }
    // Cone positions of each pin's fanout slice, ascending (= topo order).
    let mut pin_tfo: Vec<Vec<u32>> = vec![Vec::new(); gate_pins.len()];
    for (ci, &id) in cone.iter().enumerate() {
        let mut mask = tfo_mask[id.index()];
        while mask != 0 {
            pin_tfo[mask.trailing_zeros() as usize].push(ci as u32);
            mask &= mask - 1;
        }
    }

    // Pack the samples and revised-output bits into 64-wide blocks.
    struct Block {
        patterns: Vec<u64>,
        fprime: u64,
        mask: u64,
    }
    let blocks: Vec<Block> = samples
        .chunks(64)
        .zip(fprime_bits.chunks(64))
        .map(|(chunk, bits)| {
            let mut patterns = vec![0u64; circuit.num_inputs()];
            let mut fprime = 0u64;
            for (j, a) in chunk.iter().enumerate() {
                for (i, p) in patterns.iter_mut().enumerate() {
                    if a.get(i).copied().unwrap_or(false) {
                        *p |= 1u64 << j;
                    }
                }
                if bits[j] {
                    fprime |= 1u64 << j;
                }
            }
            let mask = if chunk.len() == 64 {
                !0u64
            } else {
                (1u64 << chunk.len()) - 1
            };
            Block {
                patterns,
                fprime,
                mask,
            }
        })
        .collect();

    // Baseline evaluation of the cone, once per block.
    let mut buf: Vec<u64> = Vec::with_capacity(4);
    let baselines: Vec<Vec<u64>> = blocks
        .iter()
        .map(|block| {
            let mut words = vec![0u64; circuit.num_nodes()];
            for &id in &cone {
                let node = circuit.node(id);
                words[id.index()] = match node.kind() {
                    GateKind::Input => {
                        let pos = circuit
                            .input_position(id)
                            .expect("input node is registered");
                        block.patterns[pos]
                    }
                    kind => {
                        buf.clear();
                        buf.extend(node.fanins().iter().map(|f| words[f.index()]));
                        kind.eval64(&buf)
                    }
                };
            }
            words
        })
        .collect();

    // The cone may already match every sample: H is the tautology.
    if baselines
        .iter()
        .zip(&blocks)
        .all(|(base, block)| (base[root.index()] ^ block.fprime) & block.mask == 0)
    {
        return Ok(Some(m.one()));
    }
    if m_pts == 0 {
        return Ok(Some(m.zero()));
    }

    // ∃v per sample, ∀ samples: for each block, OR the match words over all
    // value combinations of the freed pins, then require every sample bit.
    // Only the freed pins' transitive fanout is re-simulated; everything
    // else reads the block baseline.
    // One fanin read in the re-simulated slice: the block baseline, the
    // freed-subset scratch, or a forced constant driven by a `v` bit.
    #[derive(Clone, Copy)]
    enum Src {
        Base(u32),
        Scratch(u32),
        Forced(u8),
    }
    struct TapeOp {
        dst: u32,
        kind: GateKind,
        off: u32,
        len: u32,
        /// Subset-local bits of the freed pins this node depends on.
        dep: u8,
    }
    let mut scratch = vec![0u64; circuit.num_nodes()];
    let mut tfo: Vec<u32> = Vec::new();
    let mut tape: Vec<TapeOp> = Vec::new();
    let mut srcs: Vec<Src> = Vec::new();
    let mut feasible = |set: &[usize], bits: &[usize]| -> bool {
        let sel_mask = bits.iter().fold(0u128, |acc, &b| acc | (1u128 << b));
        tfo.clear();
        match bits {
            [b] => tfo.extend_from_slice(&pin_tfo[*b]),
            _ => {
                // Merge the (sorted) per-pin slices, keeping topo order.
                for &b in bits {
                    tfo.extend_from_slice(&pin_tfo[b]);
                }
                tfo.sort_unstable();
                tfo.dedup();
            }
        }
        // Compile the slice into a flat tape so the per-`v` replays do no
        // override or membership lookups.
        tape.clear();
        srcs.clear();
        for &ci in &tfo {
            let id = cone[ci as usize];
            let node = circuit.node(id);
            let off = srcs.len() as u32;
            'fanin: for (pos, f) in node.fanins().iter().enumerate() {
                for (b, &j) in set.iter().enumerate() {
                    if let Pin::Gate { node: n, pos: p } = pins[j] {
                        if n == id && p as usize == pos {
                            srcs.push(Src::Forced(b as u8));
                            continue 'fanin;
                        }
                    }
                }
                srcs.push(if tfo_mask[f.index()] & sel_mask != 0 {
                    Src::Scratch(f.index() as u32)
                } else {
                    Src::Base(f.index() as u32)
                });
            }
            let mask = tfo_mask[id.index()];
            let mut dep = 0u8;
            for (b, &gb) in bits.iter().enumerate() {
                if mask & (1u128 << gb) != 0 {
                    dep |= 1 << b;
                }
            }
            tape.push(TapeOp {
                dst: id.index() as u32,
                kind: node.kind(),
                off,
                len: (srcs.len() as u32) - off,
                dep,
            });
        }
        let exec = |op: &TapeOp, v: u64, base: &[u64], scratch: &mut [u64], buf: &mut Vec<u64>| {
            buf.clear();
            for src in &srcs[op.off as usize..(op.off + op.len) as usize] {
                buf.push(match *src {
                    Src::Base(i) => base[i as usize],
                    Src::Scratch(i) => scratch[i as usize],
                    Src::Forced(b) => {
                        if (v >> b) & 1 == 1 {
                            !0u64
                        } else {
                            0u64
                        }
                    }
                });
            }
            scratch[op.dst as usize] = op.kind.eval64(buf);
        };
        // Gray-code sweep over the 2^s value combinations: consecutive
        // steps toggle one pin, so only tape ops depending on that pin
        // replay — the rest of the scratch slice stays valid.
        for (base, block) in baselines.iter().zip(&blocks) {
            let mut ok = 0u64;
            let mut v = 0u64;
            for op in &tape {
                exec(op, v, base, &mut scratch, &mut buf);
            }
            ok |= !(scratch[root.index()] ^ block.fprime);
            for step in 1..(1u64 << set.len()) {
                if ok & block.mask == block.mask {
                    break;
                }
                let toggled = step.trailing_zeros();
                v ^= 1u64 << toggled;
                let tbit = 1u8 << toggled;
                for op in &tape {
                    if op.dep & tbit != 0 {
                        exec(op, v, base, &mut scratch, &mut buf);
                    }
                }
                ok |= !(scratch[root.index()] ^ block.fprime);
            }
            if ok & block.mask != block.mask {
                return false;
            }
        }
        true
    };

    // Increasing-size enumeration of minimal feasible pin-sets. Sets of
    // size ≥ 2 draw only from pins whose singleton is infeasible — a set
    // containing a feasible singleton is covered by it — and the remaining
    // superset filter checks the (few) multi-pin minimal sets by mask.
    let mut minimal: Vec<Vec<usize>> = Vec::new();
    let mut pool: Vec<(usize, usize)> = Vec::new(); // (pin code, mask bit)
    for (b, &j) in gate_pins.iter().enumerate() {
        if feasible(&[j], &[b]) {
            minimal.push(vec![j]);
        } else {
            pool.push((j, b));
        }
    }
    if let Some(oc) = out_code {
        minimal.push(vec![oc]);
    }
    let mut multi_masks: Vec<u128> = Vec::new();
    for s in 2..=depth.min(pool.len()) {
        let mut idx: Vec<usize> = (0..s).collect();
        loop {
            let sel_mask = idx.iter().fold(0u128, |acc, &i| acc | (1u128 << pool[i].1));
            // Covered iff some recorded minimal set is a subset of this one.
            let covered = multi_masks.iter().any(|&mm| mm & !sel_mask == 0);
            if !covered {
                let set: Vec<usize> = idx.iter().map(|&i| pool[i].0).collect();
                let bits: Vec<usize> = idx.iter().map(|&i| pool[i].1).collect();
                if feasible(&set, &bits) {
                    minimal.push(set);
                    multi_masks.push(sel_mask);
                }
            }
            if !next_combination(&mut idx, pool.len()) {
                break;
            }
        }
    }

    // H(t) = ⋁_{S minimal} ⋀_{j∈S} sel_j(t).
    let mut sel_cache: HashMap<usize, Bdd> = HashMap::new();
    let mut h = m.zero();
    for set in &minimal {
        let mut term = m.one();
        for &j in set {
            let sel = match sel_cache.get(&j) {
                Some(&s) => s,
                None => {
                    let s = selection.select(m, j)?;
                    sel_cache.insert(j, s);
                    s
                }
            };
            term = m.and(term, sel)?;
        }
        h = m.or(h, term)?;
    }
    Ok(Some(h))
}

/// The restriction-driven `H(t)` construction: the direct sample-wise
/// conjunction, for selections whose pin-subset space is too large to
/// enumerate.
#[allow(clippy::too_many_arguments)]
fn h_char_by_restriction(
    circuit: &Circuit,
    m: &mut BddManager,
    samples: &[Vec<bool>],
    fprime_bits: &[bool],
    root: NetId,
    output_index: u32,
    pins: &[Pin],
    selection: &Selection,
    y_base: u32,
) -> Result<Bdd, BddError> {
    // Precompute per-pin selection and data-1 functions.
    let mut sels = Vec::with_capacity(pins.len());
    let mut data1s = Vec::with_capacity(pins.len());
    for j in 0..pins.len() {
        sels.push(selection.select(m, j)?);
        data1s.push(selection.data1(m, j, y_base)?);
    }

    // Parameterized evaluation: every candidate gate pin is guarded by
    // ite(sel_j, data1_j, original) — the MUX of Figure 2.
    let mut pin_subst: HashMap<Pin, usize> = HashMap::new();
    let mut output_pin_code: Option<usize> = None;
    for (j, &pin) in pins.iter().enumerate() {
        match pin {
            Pin::Gate { .. } => {
                pin_subst.insert(pin, j);
            }
            Pin::Output { index } if index == output_index => {
                output_pin_code = Some(j);
            }
            Pin::Output { .. } => {}
        }
    }
    let y_vars: Vec<u32> = (0..selection.num_points)
        .map(|i| y_base + i as u32)
        .collect();
    let y_cube = m.var_cube(&y_vars)?;

    // The cone's structure is sample-independent: hoist the traversal
    // order and membership out of the per-sample loop.
    let order = topo::topo_order(circuit).expect("engine guarantees acyclic circuits");
    let in_cone = topo::tfi(circuit, &[root.source()]);
    let cone: Vec<NodeId> = order.into_iter().filter(|id| in_cone[id.index()]).collect();
    // The restricted cone depends on a sample only through its projection
    // onto the cone's input support — memoize `h|_{x̂}` on that key, and
    // skip conjuncts (same `h`, same revised bit) seen before: `∧` is
    // idempotent, so duplicates cannot change `H(t)`.
    let support: Vec<usize> = cone
        .iter()
        .filter(|&&id| circuit.node(id).kind() == GateKind::Input)
        .map(|&id| {
            circuit
                .input_position(id)
                .expect("input node is registered")
        })
        .collect();
    let mut h_memo: HashMap<Vec<bool>, Bdd> = HashMap::new();
    let mut seen: std::collections::HashSet<(Bdd, bool)> = std::collections::HashSet::new();

    // Padded codes alias real samples (`k mod N`), so quantifying over the
    // full code space conjoins exactly one conjunct per distinct sample.
    let mut h_char = m.one();
    let mut values: Vec<Option<Bdd>> = vec![None; circuit.num_nodes()];
    for (k, sample) in samples.iter().enumerate() {
        let key: Vec<bool> = support
            .iter()
            .map(|&pos| sample.get(pos).copied().unwrap_or(false))
            .collect();
        let h = match h_memo.get(&key) {
            Some(&h) => h,
            None => {
                values.iter_mut().for_each(|v| *v = None);
                for &id in &cone {
                    let node = circuit.node(id);
                    let v = match node.kind() {
                        GateKind::Input => {
                            let pos = circuit
                                .input_position(id)
                                .expect("input node is registered");
                            if sample.get(pos).copied().unwrap_or(false) {
                                m.one()
                            } else {
                                m.zero()
                            }
                        }
                        kind => {
                            let mut fanins: Vec<Bdd> = Vec::with_capacity(node.fanins().len());
                            for (pos, f) in node.fanins().iter().enumerate() {
                                let orig = values[f.index()].expect("topological order");
                                let pin = Pin::gate(id, pos as u8);
                                let v = match pin_subst.get(&pin) {
                                    Some(&j) => m.ite(sels[j], data1s[j], orig)?,
                                    None => orig,
                                };
                                fanins.push(v);
                            }
                            apply_gate_bdd(m, kind, &fanins)?
                        }
                    };
                    values[id.index()] = Some(v);
                }
                let mut h = values[root.index()].expect("root is in its own cone");
                if let Some(j) = output_pin_code {
                    h = m.ite(sels[j], data1s[j], h)?;
                }
                h_memo.insert(key, h);
                h
            }
        };
        if !seen.insert((h, fprime_bits[k])) {
            continue;
        }
        // h ≡ f'(x̂_k) against a constant is h itself or its complement.
        let eq = if fprime_bits[k] { h } else { m.not(h)? };
        let feasible_k = m.exists(eq, y_cube)?;
        h_char = m.and(h_char, feasible_k)?;
        if h_char == m.zero() {
            break;
        }
    }
    Ok(h_char)
}

/// Decodes one prime cube of `H(t)` into concrete point-sets.
///
/// For each `t` block, the cube's literals admit a set of pin codes; codes
/// beyond the pin count mean "this point selects nothing". Up to `max`
/// combinations of admissible codes are instantiated.
fn decode_prime(selection: &Selection, prime: &Cube, pins: &[Pin], max: usize) -> Vec<PointSet> {
    let bits = selection.bits_per_block as usize;
    // Admissible codes per block. `None` entry = point unused.
    let mut per_block: Vec<Vec<Option<usize>>> = Vec::with_capacity(selection.num_points);
    for i in 0..selection.num_points {
        let vars = selection.block_vars(i);
        let mut admissible = Vec::new();
        'code: for code in 0..(1usize << bits) {
            for (b, &var) in vars.iter().enumerate() {
                let bit = (code >> (bits - 1 - b)) & 1 == 1;
                if let Some(phase) = prime.phase(var) {
                    if phase != bit {
                        continue 'code;
                    }
                }
            }
            admissible.push(if code < pins.len() { Some(code) } else { None });
        }
        // Prefer concrete pins over "unused", and low codes (shallow pins)
        // first; a fully unconstrained block contributes only its first few
        // options to avoid blow-up.
        admissible.sort_by_key(|c| match c {
            Some(j) => *j,
            None => usize::MAX,
        });
        admissible.dedup();
        admissible.truncate(max.max(1));
        per_block.push(admissible);
    }
    // Cartesian product, truncated at `max` results.
    let mut results: Vec<PointSet> = Vec::new();
    let mut counters = vec![0usize; per_block.len()];
    'outer: loop {
        let mut set: PointSet = Vec::new();
        for (i, &k) in counters.iter().enumerate() {
            if let Some(code) = per_block[i][k] {
                let pin = pins[code];
                if !set.contains(&pin) {
                    set.push(pin);
                }
            }
        }
        set.sort();
        if !results.contains(&set) {
            results.push(set);
            if results.len() >= max {
                break;
            }
        }
        // Odometer increment.
        for i in (0..counters.len()).rev() {
            counters[i] += 1;
            if counters[i] < per_block[i].len() {
                continue 'outer;
            }
            counters[i] = 0;
        }
        break;
    }
    results
}

/// Checks the topological constraint of §3.3: no path may connect any pair
/// of the selected pins. The output pin is downstream of the whole cone, so
/// it only ever appears in singleton sets.
pub fn topological_constraint_ok(circuit: &Circuit, pins: &[Pin], output_index: u32) -> bool {
    let _ = output_index;
    for (a, &pa) in pins.iter().enumerate() {
        for &pb in pins.iter().skip(a + 1) {
            match (pa.node(), pb.node()) {
                (Some(na), Some(nb)) => {
                    // Sibling pins of one gate are path-free; a path between
                    // distinct pins exists iff one consumer reaches the other
                    // through its output.
                    if na != nb
                        && (topo::tfi_contains(circuit, na, nb)
                            || topo::tfi_contains(circuit, nb, na))
                    {
                        return false;
                    }
                }
                // An output pin paired with anything inside the cone is
                // connected by a path by definition.
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::{Circuit, GateKind};

    /// impl: y = a AND b (wrong); spec: y = a OR b.
    fn and_vs_or() -> (Circuit, Circuit) {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let mut s = Circuit::new("spec");
        let a = s.add_input("a");
        let b = s.add_input("b");
        let g = s.add_gate(GateKind::Or, &[a, b]).unwrap();
        s.add_output("y", g);
        (c, s)
    }

    #[test]
    fn candidate_pins_include_output_last() {
        let (c, _) = and_vs_or();
        let root = c.outputs()[0].net();
        let pins = candidate_pins(&c, root, 0, 8);
        assert_eq!(*pins.last().unwrap(), Pin::output(0));
        assert_eq!(pins.len(), 3); // two AND pins + output pin
    }

    #[test]
    fn candidate_pins_respect_cap() {
        let mut c = Circuit::new("big");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let mut w = a;
        for _ in 0..20 {
            w = c.add_gate(GateKind::And, &[w, b]).unwrap();
        }
        c.add_output("y", w);
        let pins = candidate_pins(&c, w, 0, 10);
        assert_eq!(pins.len(), 10);
        assert_eq!(*pins.last().unwrap(), Pin::output(0));
    }

    #[test]
    fn selection_encoding_counts() {
        let sel = Selection::new(4, 3, 10);
        assert_eq!(sel.bits_per_block, 4);
        assert_eq!(sel.num_t_vars(), 12);
        assert_eq!(sel.block_vars(1), vec![8, 9, 10, 11]);
    }

    #[test]
    fn selection_minterms_are_disjoint() {
        let mut m = BddManager::new();
        let sel = Selection::new(0, 2, 4);
        let t00 = sel.minterm(&mut m, 0, 0).unwrap();
        let t01 = sel.minterm(&mut m, 0, 1).unwrap();
        assert_eq!(m.and(t00, t01).unwrap(), m.zero());
        // All codes of a block cover the space.
        let mut cover = m.zero();
        for code in 0..4 {
            let t = sel.minterm(&mut m, 0, code).unwrap();
            cover = m.or(cover, t).unwrap();
        }
        assert_eq!(cover, m.one());
    }

    /// End-to-end: H(t) over the and-vs-or example must admit rectification
    /// at a single point (either AND pin rewired appropriately, or the
    /// output itself).
    #[test]
    fn point_sets_found_for_simple_revision() {
        let (c, s) = and_vs_or();
        let root = c.outputs()[0].net();
        let mut m = BddManager::new();
        // Error domain of and-vs-or: a != b. Use both samples.
        let samples = vec![vec![true, false], vec![false, true]];
        // Allocate: t at 0.., y after, z last.
        let pins = candidate_pins(&c, root, 0, 8);
        let sel = Selection::new(0, 1, pins.len());
        let y_base = sel.t_base + sel.num_t_vars();
        // Spec shares input order here: f'(x̂_k) per sample.
        let fprime_bits: Vec<bool> = samples
            .iter()
            .map(|x| s.eval_nets(x).unwrap()[s.outputs()[0].net().index()])
            .collect();
        let sets = feasible_point_sets(
            &c,
            &mut m,
            &samples,
            &fprime_bits,
            root,
            0,
            &pins,
            &sel,
            y_base,
            8,
            4,
        )
        .unwrap();
        assert!(!sets.is_empty(), "a single free pin can fix and→or");
        for set in &sets {
            assert_eq!(set.len(), 1, "m=1 yields singletons: {set:?}");
        }
    }

    /// With zero rectification points feasible (m too small is impossible
    /// here since output pin always works at m=1), an equivalent pair gives
    /// the empty-prime universal solution.
    #[test]
    fn equivalent_pair_admits_trivial_selection() {
        let (c, _) = and_vs_or();
        let s = c.clone();
        let root = c.outputs()[0].net();
        let mut m = BddManager::new();
        let samples = vec![vec![true, true], vec![false, true]];
        let pins = candidate_pins(&c, root, 0, 8);
        let sel = Selection::new(0, 1, pins.len());
        let y_base = sel.t_base + sel.num_t_vars();
        let fprime_bits: Vec<bool> = samples
            .iter()
            .map(|x| s.eval_nets(x).unwrap()[s.outputs()[0].net().index()])
            .collect();
        let sets = feasible_point_sets(
            &c,
            &mut m,
            &samples,
            &fprime_bits,
            root,
            0,
            &pins,
            &sel,
            y_base,
            8,
            4,
        )
        .unwrap();
        // H(t) is a tautology here; whatever decodes must satisfy the
        // topological constraint and reference known pins.
        for set in &sets {
            assert!(topological_constraint_ok(&c, set, 0));
            for p in set {
                assert!(pins.contains(p));
            }
        }
    }

    /// The simulation-driven and restriction-driven `H(t)` constructions
    /// must agree node-for-node: the manager is canonical, so semantic
    /// equality is BDD identity. Random circuits, samples, and revised
    /// bits; every selection size the engine escalates through.
    #[test]
    fn simulation_and_restriction_h_agree() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        for seed in 0..40u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut c = Circuit::new("rnd");
            let num_inputs = rng.gen_range(3..=5);
            let mut nets: Vec<_> = (0..num_inputs)
                .map(|i| c.add_input(format!("x{i}")))
                .collect();
            let kinds = [
                GateKind::And,
                GateKind::Or,
                GateKind::Xor,
                GateKind::Nand,
                GateKind::Nor,
                GateKind::Not,
            ];
            for _ in 0..rng.gen_range(4..=10) {
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let arity = if kind == GateKind::Not { 1 } else { 2 };
                let fanins: Vec<_> = (0..arity)
                    .map(|_| nets[rng.gen_range(0..nets.len())])
                    .collect();
                nets.push(c.add_gate(kind, &fanins).unwrap());
            }
            let root = *nets.last().unwrap();
            c.add_output("y", root);

            let samples: Vec<Vec<bool>> = (0..rng.gen_range(2..=6))
                .map(|_| (0..num_inputs).map(|_| rng.gen()).collect())
                .collect();
            let fprime_bits: Vec<bool> = samples.iter().map(|_| rng.gen()).collect();
            let pins = candidate_pins(&c, root, 0, 10);

            for m_points in 1..=3usize {
                let sel = Selection::new(0, m_points, pins.len());
                let y_base = sel.num_t_vars();
                let mut m = BddManager::new();
                let fast =
                    h_char_by_simulation(&c, &mut m, &samples, &fprime_bits, root, 0, &pins, &sel)
                        .unwrap()
                        .expect("small pin space stays under the budget");
                let slow = h_char_by_restriction(
                    &c,
                    &mut m,
                    &samples,
                    &fprime_bits,
                    root,
                    0,
                    &pins,
                    &sel,
                    y_base,
                )
                .unwrap();
                assert_eq!(
                    fast, slow,
                    "H(t) constructions diverge: seed {seed}, m {m_points}"
                );
            }
        }
    }

    #[test]
    fn next_combination_enumerates_all_subsets() {
        let mut idx = vec![0usize, 1, 2];
        let mut count = 1;
        while next_combination(&mut idx, 6) {
            count += 1;
        }
        assert_eq!(count, 20); // C(6,3)
    }

    #[test]
    fn topological_constraint_rejects_chained_pins() {
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, &[g1, b]).unwrap();
        c.add_output("y", g2);
        // Pins on g1 and g2: g1 feeds g2, so the pair is rejected.
        let p1 = Pin::gate(g1.source(), 0);
        let p2 = Pin::gate(g2.source(), 0);
        assert!(!topological_constraint_ok(&c, &[p1, p2], 0));
        // Sibling pins of the same gate have no path between them.
        let p3 = Pin::gate(g2.source(), 1);
        assert!(topological_constraint_ok(&c, &[p2, p3], 0));
        // Output pin combined with a gate pin is rejected.
        assert!(!topological_constraint_ok(&c, &[p1, Pin::output(0)], 0));
    }
}
