//! Exact-domain validation of candidate rewire operations (paper §5.1/5.2).
//!
//! A rewiring found in the sampling domain is a *candidate*: the domain is a
//! projection, so the choice may be a false positive. Validation applies the
//! rewire to a scratch copy, pre-filters with simulation over the
//! accumulated sample bank, and confirms with a resource-constrained SAT
//! solver. A distinguishing assignment feeds back into the domain
//! (counterexample-guided refinement); a break of a previously correct
//! output prunes the candidate (the "damage" rule of §5.2).

use std::collections::{HashMap, HashSet};

use eco_netlist::{sim, topo, Circuit, NetId, NetlistError, Pin};
use eco_sat::SolverStats;

use crate::budget::Budget;
use crate::correspond::{Correspondence, OutputPair};
use crate::patch::RewireOp;
use crate::rewire_nets::RewireCandidate;
use crate::EcoError;

/// One candidate rewire: a rectification point and its chosen net.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateRewire {
    /// The rectification point.
    pub pin: Pin,
    /// The chosen rewiring net.
    pub candidate: RewireCandidate,
}

/// Verdict of validating a candidate rewire operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Validation {
    /// The rewire rectifies the representative output without damaging any
    /// previously correct output; `fixed` lists additional failing outputs
    /// it also corrects (§5.2: such candidates are favored).
    Valid {
        /// Other failing output indices now equivalent.
        fixed: Vec<u32>,
    },
    /// The representative output still differs: a false positive of the
    /// sampling domain, with the distinguishing assignment for refinement.
    CounterExample(Vec<bool>),
    /// A previously correct output was broken — prune the candidate.
    Damaged,
    /// The rewire was structurally impossible (it would create a cycle) —
    /// prune the candidate.
    Infeasible,
    /// The SAT resource budget ran out before a verdict.
    Unknown,
}

/// Applies `rewires` to `target`, cloning specification cones as needed.
///
/// `shared_clones` maps spec nets already instantiated in `target` (by
/// earlier commits) so overlapping revisions reuse one copy; it is extended
/// with this call's clones. Returns the concrete [`RewireOp`]s and the nets
/// newly cloned from the spec.
///
/// # Errors
///
/// [`NetlistError::WouldCycle`] when a rewire violates acyclicity (callers
/// treat this as an invalid candidate), and other [`NetlistError`]s for
/// malformed references.
pub fn apply_rewires(
    target: &mut Circuit,
    spec: &Circuit,
    rewires: &[CandidateRewire],
    shared_clones: &mut HashMap<NetId, NetId>,
) -> Result<(Vec<RewireOp>, Vec<NetId>), NetlistError> {
    let mut ops = Vec::with_capacity(rewires.len());
    let mut cloned: Vec<NetId> = Vec::new();
    let clone_map: &mut HashMap<NetId, NetId> = shared_clones;
    for r in rewires {
        let new_net = if r.candidate.from_spec {
            if let Some(&already) = clone_map.get(&r.candidate.net) {
                already
            } else {
                let before = target.num_nodes();
                let map = target.clone_cone(spec, &[r.candidate.net], clone_map)?;
                for i in before..target.num_nodes() {
                    cloned.push(NetId::from_index(i));
                }
                clone_map.extend(map.iter().map(|(&k, &v)| (k, v)));
                map[&r.candidate.net]
            }
        } else {
            r.candidate.net
        };
        let old_net = target.pin_net(r.pin)?;
        target.rewire(r.pin, new_net)?;
        ops.push(RewireOp {
            pin: r.pin,
            old_net,
            new_net,
            from_spec: r.candidate.from_spec,
        });
    }
    Ok((ops, cloned))
}

/// Output indices affected by rewiring `rewires` in `circuit`.
pub fn affected_outputs(circuit: &Circuit, rewires: &[CandidateRewire]) -> Vec<u32> {
    let mut direct: HashSet<u32> = HashSet::new();
    let mut nodes = Vec::new();
    for r in rewires {
        match r.pin {
            Pin::Gate { node, .. } => nodes.push(node),
            Pin::Output { index } => {
                direct.insert(index);
            }
        }
    }
    let mut out: Vec<u32> = topo::outputs_depending_on(circuit, &nodes);
    out.extend(direct);
    out.sort_unstable();
    out.dedup();
    out
}

/// Validates a candidate rewire operation against the exact domain.
///
/// `failing` holds the output indices currently known to be wrong
/// (including `representative`); `sample_bank` is every input assignment
/// collected so far, used as a cheap simulation pre-filter before SAT.
///
/// # Errors
///
/// Propagates [`EcoError`] on encoding failures; resource exhaustion maps to
/// [`Validation::Unknown`], not an error.
#[allow(clippy::too_many_arguments)]
pub fn validate_rewires(
    implementation: &Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    rewires: &[CandidateRewire],
    representative: &OutputPair,
    failing: &HashSet<u32>,
    sample_bank: &[Vec<bool>],
    shared_clones: &HashMap<NetId, NetId>,
    budget: u64,
    governor: Option<&Budget>,
) -> Result<Validation, EcoError> {
    validate_rewires_with_stats(
        implementation,
        spec,
        corr,
        rewires,
        representative,
        failing,
        sample_bank,
        shared_clones,
        budget,
        governor,
    )
    .map(|(v, _)| v)
}

/// [`validate_rewires`] plus the SAT effort the call consumed.
///
/// The returned [`SolverStats`] covers the validation solver only (zero when
/// the verdict came from the simulation pre-filter or structural checks);
/// the rectification driver folds it into the run-level telemetry.
///
/// # Errors
///
/// Same contract as [`validate_rewires`].
#[allow(clippy::too_many_arguments)]
pub fn validate_rewires_with_stats(
    implementation: &Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    rewires: &[CandidateRewire],
    representative: &OutputPair,
    failing: &HashSet<u32>,
    sample_bank: &[Vec<bool>],
    shared_clones: &HashMap<NetId, NetId>,
    budget: u64,
    governor: Option<&Budget>,
) -> Result<(Validation, SolverStats), EcoError> {
    if let Some(g) = governor {
        if g.inject_sat_exhaust() {
            return Ok((Validation::Unknown, SolverStats::default()));
        }
    }
    let mut scratch = implementation.clone();
    let mut scratch_clones = shared_clones.clone();
    match apply_rewires(&mut scratch, spec, rewires, &mut scratch_clones) {
        Ok(_) => {}
        Err(NetlistError::WouldCycle { .. }) => {
            return Ok((Validation::Infeasible, SolverStats::default()))
        }
        Err(e) => return Err(e.into()),
    }

    let affected = affected_outputs(&scratch, rewires);

    // Simulation pre-filter over the sample bank.
    if !sample_bank.is_empty() {
        let impl_blocks = sim::simulate_patterns(&scratch, sample_bank).map_err(EcoError::from)?;
        let spec_samples: Vec<Vec<bool>> = sample_bank
            .iter()
            .map(|s| corr.spec_assignment(s))
            .collect();
        let spec_blocks = sim::simulate_patterns(spec, &spec_samples).map_err(EcoError::from)?;
        for &oi in &affected {
            let pair = &corr.outputs[oi as usize];
            let inet = scratch.outputs()[pair.impl_index as usize].net();
            let snet = spec.outputs()[pair.spec_index as usize].net();
            for (block, (ib, sb)) in impl_blocks.iter().zip(&spec_blocks).enumerate() {
                let diff = ib[inet.index()] ^ sb[snet.index()];
                if diff == 0 {
                    continue;
                }
                let bit = diff.trailing_zeros() as usize;
                let sample_idx = block * 64 + bit;
                if sample_idx >= sample_bank.len() {
                    continue;
                }
                if oi == representative.impl_index {
                    return Ok((
                        Validation::CounterExample(sample_bank[sample_idx].clone()),
                        SolverStats::default(),
                    ));
                }
                if !failing.contains(&oi) {
                    return Ok((Validation::Damaged, SolverStats::default()));
                }
                // A still-failing non-representative output mismatching is
                // acceptable; it is simply not "fixed".
            }
        }
    }

    // SAT confirmation with a single miter encoding: one difference literal
    // per affected output, queried under assumptions.
    use eco_sat::{tseitin, SolveResult, Solver};
    let pairs: Vec<(eco_netlist::NetId, eco_netlist::NetId)> = affected
        .iter()
        .map(|&oi| {
            let pair = &corr.outputs[oi as usize];
            (
                scratch.outputs()[pair.impl_index as usize].net(),
                spec.outputs()[pair.spec_index as usize].net(),
            )
        })
        .collect();
    let mut solver = Solver::new();
    let miter =
        tseitin::encode_pairs(&mut solver, &scratch, spec, &pairs).map_err(EcoError::from)?;
    eco_sat::cec::assist_equivalences(
        &mut solver,
        &scratch,
        spec,
        &miter.left,
        &miter.right,
        &eco_sat::cec::CecOptions::default(),
    )
    .map_err(EcoError::from)?;
    solver.set_conflict_budget(Some(budget));
    if let Some(g) = governor {
        g.arm_solver(&mut solver);
    }

    // Representative output first.
    if let Some(rep_pos) = affected
        .iter()
        .position(|&oi| oi == representative.impl_index)
    {
        match solver.solve(&[miter.diff_lits[rep_pos]]) {
            SolveResult::Unsat => {}
            SolveResult::Sat => {
                let model = tseitin::model_inputs(&solver, &miter, &scratch);
                return Ok((Validation::CounterExample(model), solver.stats()));
            }
            SolveResult::Unknown => return Ok((Validation::Unknown, solver.stats())),
        }
    } else {
        // The rewire does not even reach the representative output: it
        // cannot rectify it.
        return Ok((Validation::Unknown, solver.stats()));
    }

    // Previously correct affected outputs must stay correct; still-failing
    // ones may optionally be credited as fixed (bounded effort).
    let mut fixed = Vec::new();
    let mut checked = 0usize;
    for (pos, &oi) in affected.iter().enumerate() {
        if oi == representative.impl_index {
            continue;
        }
        if failing.contains(&oi) {
            if checked < 16 {
                checked += 1;
                if solver.solve(&[miter.diff_lits[pos]]) == SolveResult::Unsat {
                    fixed.push(oi);
                }
            }
        } else {
            match solver.solve(&[miter.diff_lits[pos]]) {
                SolveResult::Unsat => {}
                SolveResult::Sat => return Ok((Validation::Damaged, solver.stats())),
                SolveResult::Unknown => return Ok((Validation::Unknown, solver.stats())),
            }
        }
    }
    let stats = solver.stats();
    Ok((Validation::Valid { fixed }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;

    /// impl: y = a & b, z = a; spec: y = a | b, z = a.
    fn setup() -> (Circuit, Circuit, Correspondence) {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        c.add_output("z", a);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sg = s.add_gate(GateKind::Or, &[sa, sb]).unwrap();
        s.add_output("y", sg);
        s.add_output("z", sa);
        let corr = Correspondence::build(&c, &s).unwrap();
        (c, s, corr)
    }

    fn spec_or_candidate(s: &Circuit) -> RewireCandidate {
        RewireCandidate {
            net: s.outputs()[0].net(),
            from_spec: true,
            utility: 1.0,
            arrival: 0.0,
        }
    }

    #[test]
    fn valid_rewire_accepted() {
        let (c, s, corr) = setup();
        let rewires = vec![CandidateRewire {
            pin: Pin::output(0),
            candidate: spec_or_candidate(&s),
        }];
        let failing: HashSet<u32> = [0].into_iter().collect();
        let v = validate_rewires(
            &c,
            &s,
            &corr,
            &rewires,
            &corr.outputs[0],
            &failing,
            &[vec![true, false]],
            &HashMap::new(),
            100_000,
            None,
        )
        .unwrap();
        assert_eq!(v, Validation::Valid { fixed: vec![] });
    }

    #[test]
    fn false_positive_yields_counterexample() {
        let (c, s, corr) = setup();
        // Rewire y to input a: fixes a=1,b=0 but not a=0,b=1.
        let a = c.input_by_name("a").unwrap();
        let rewires = vec![CandidateRewire {
            pin: Pin::output(0),
            candidate: RewireCandidate {
                net: a,
                from_spec: false,
                utility: 0.5,
                arrival: 0.0,
            },
        }];
        let failing: HashSet<u32> = [0].into_iter().collect();
        let v = validate_rewires(
            &c,
            &s,
            &corr,
            &rewires,
            &corr.outputs[0],
            &failing,
            &[],
            &HashMap::new(),
            100_000,
            None,
        )
        .unwrap();
        match v {
            Validation::CounterExample(x) => {
                // The counterexample distinguishes the rewired impl from spec.
                assert!(!x[0]);
                assert!(x[1]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn damaging_rewire_rejected() {
        let (c, s, corr) = setup();
        // Rewire output z (currently correct) to b: damages z.
        let b = c.input_by_name("b").unwrap();
        let rewires = vec![
            CandidateRewire {
                pin: Pin::output(0),
                candidate: spec_or_candidate(&s),
            },
            CandidateRewire {
                pin: Pin::output(1),
                candidate: RewireCandidate {
                    net: b,
                    from_spec: false,
                    utility: 0.4,
                    arrival: 0.0,
                },
            },
        ];
        let failing: HashSet<u32> = [0].into_iter().collect();
        let v = validate_rewires(
            &c,
            &s,
            &corr,
            &rewires,
            &corr.outputs[0],
            &failing,
            &[vec![true, false], vec![false, true]],
            &HashMap::new(),
            100_000,
            None,
        )
        .unwrap();
        assert_eq!(v, Validation::Damaged);
    }

    #[test]
    fn cyclic_rewire_is_infeasible() {
        let (c, s, corr) = setup();
        let g = c.outputs()[0].net();
        // Feed the AND gate from its own output.
        let rewires = vec![CandidateRewire {
            pin: Pin::gate(g.source(), 0),
            candidate: RewireCandidate {
                net: g,
                from_spec: false,
                utility: 1.0,
                arrival: 0.0,
            },
        }];
        let failing: HashSet<u32> = [0].into_iter().collect();
        let v = validate_rewires(
            &c,
            &s,
            &corr,
            &rewires,
            &corr.outputs[0],
            &failing,
            &[],
            &HashMap::new(),
            100_000,
            None,
        )
        .unwrap();
        assert_eq!(v, Validation::Infeasible);
    }

    #[test]
    fn apply_rewires_clones_spec_cone_once() {
        let (mut c, s, _corr) = setup();
        let cand = spec_or_candidate(&s);
        let rewires = vec![
            CandidateRewire {
                pin: Pin::output(0),
                candidate: cand.clone(),
            },
            CandidateRewire {
                pin: Pin::output(1),
                candidate: cand,
            },
        ];
        let before = c.num_nodes();
        let (ops, cloned) = apply_rewires(&mut c, &s, &rewires, &mut HashMap::new()).unwrap();
        assert_eq!(ops.len(), 2);
        // OR over existing inputs: exactly one new node despite two uses.
        assert_eq!(cloned.len(), 1);
        assert_eq!(c.num_nodes(), before + 1);
        assert_eq!(ops[0].new_net, ops[1].new_net);
    }

    #[test]
    fn affected_outputs_tracks_fanout() {
        let (c, _s, _corr) = setup();
        let g = c.outputs()[0].net();
        let rewires = vec![CandidateRewire {
            pin: Pin::gate(g.source(), 0),
            candidate: RewireCandidate {
                net: c.input_by_name("b").unwrap(),
                from_spec: false,
                utility: 0.0,
                arrival: 0.0,
            },
        }];
        assert_eq!(affected_outputs(&c, &rewires), vec![0]);
        let out_rewire = vec![CandidateRewire {
            pin: Pin::output(1),
            candidate: RewireCandidate {
                net: g,
                from_spec: false,
                utility: 0.0,
                arrival: 0.0,
            },
        }];
        assert_eq!(affected_outputs(&c, &out_rewire), vec![1]);
    }
}
