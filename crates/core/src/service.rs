//! The engine side of the daemon (DESIGN.md §15): an
//! [`eco_serve::JobRunner`] implementation that maps service jobs onto
//! the [`Session`] API.
//!
//! The service crate is engine-agnostic — it ships opaque BLIF text and a
//! cancel/deadline [`JobControl`] — so this bridge owns the translation:
//! parse the netlist pair, derive per-job [`EcoOptions`] and a [`Budget`]
//! from the control block, run the session, and fold the result into a
//! wire-level [`JobOutcome`]. All jobs share the daemon's base options
//! (cache directory, checkpoint directory, worker count per job) and its
//! [`Telemetry`] registry, which is what makes cross-job cache reuse and
//! the single `/metrics` endpoint work.

use eco_netlist::{read_blif, write_blif};
use eco_serve::{JobControl, JobOutcome, JobRequest, JobRunner, JobStatus};
use eco_telemetry::Telemetry;

use crate::budget::{Budget, CancelToken};
use crate::options::EcoOptions;
use crate::session::Session;

/// Runs service jobs through the rectification engine.
///
/// One `EngineRunner` serves every job of a daemon: per-job state
/// (options, budget, session) is derived fresh on each call, so the type
/// is freely shared across worker threads.
pub struct EngineRunner {
    base: EcoOptions,
    telemetry: Telemetry,
}

impl EngineRunner {
    /// A runner deriving every job's options from `base` (which carries
    /// the daemon-wide cache/checkpoint directories and per-job worker
    /// count) and recording into `telemetry`.
    pub fn new(base: EcoOptions, telemetry: Telemetry) -> EngineRunner {
        EngineRunner { base, telemetry }
    }

    /// The options one job resolves to: the daemon base with the client's
    /// seed and sample count applied.
    pub fn job_options(&self, request: &JobRequest) -> EcoOptions {
        let mut options = self.base.clone();
        options.seed = request.seed;
        if request.num_samples > 0 {
            options.num_samples = request.num_samples as usize;
        }
        options
    }
}

impl JobRunner for EngineRunner {
    fn run(&self, request: &JobRequest, control: &JobControl) -> JobOutcome {
        let implementation = match read_blif(&request.impl_blif) {
            Ok(c) => c,
            Err(e) => {
                return JobOutcome::empty(JobStatus::Failed, format!("bad impl netlist: {e}"))
            }
        };
        let spec = match read_blif(&request.spec_blif) {
            Ok(c) => c,
            Err(e) => {
                return JobOutcome::empty(JobStatus::Failed, format!("bad spec netlist: {e}"))
            }
        };
        let token = CancelToken::from_shared(control.cancel_flag());
        let budget = match control.deadline() {
            Some(at) => Budget::with_deadline_at(at),
            None => Budget::unlimited(),
        }
        .with_cancel(&token);
        let session = Session::new(self.job_options(request)).with_telemetry(&self.telemetry);
        match session.run_with_budget(&implementation, &spec, &budget) {
            Ok(result) => {
                let degradations = &result.rectify.degradations;
                // A cancelled job may still carry an honest (fully
                // fallback-rectified) patch; it is reported as Cancelled
                // for accounting but the patch is not discarded.
                let status = if control.is_cancelled() {
                    JobStatus::Cancelled
                } else if degradations.is_empty() {
                    JobStatus::Completed
                } else {
                    JobStatus::Degraded
                };
                let detail = match degradations.len() {
                    0 => String::new(),
                    n => format!("{n} degraded output(s); first: {}", degradations[0]),
                };
                JobOutcome {
                    status,
                    patch_blif: write_blif(&result.patched),
                    degradations: degradations.len() as u32,
                    detail,
                }
            }
            Err(e) => JobOutcome::empty(JobStatus::Failed, e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::time::{Duration, Instant};

    const IMPL: &str = ".model impl\n.inputs a b\n.outputs y\n.gate and w a b\n.assign y w\n.end\n";
    const SPEC: &str = ".model spec\n.inputs a b\n.outputs y\n.gate or w a b\n.assign y w\n.end\n";

    fn request() -> JobRequest {
        let mut r = JobRequest::new("tenant", IMPL, SPEC);
        r.seed = 3;
        r
    }

    #[test]
    fn clean_job_completes_with_the_cli_identical_patch() {
        let runner = EngineRunner::new(EcoOptions::with_seed(3), Telemetry::disabled());
        let outcome = runner.run(&request(), &JobControl::unbounded());
        assert_eq!(outcome.status, JobStatus::Completed);
        assert_eq!(outcome.degradations, 0);
        // Byte-identity with the direct Session path (the CLI's).
        let direct = Session::new(EcoOptions::with_seed(3))
            .run(&read_blif(IMPL).unwrap(), &read_blif(SPEC).unwrap())
            .unwrap();
        assert_eq!(outcome.patch_blif, write_blif(&direct.patched));
    }

    #[test]
    fn garbage_netlists_fail_without_panicking() {
        let runner = EngineRunner::new(EcoOptions::default(), Telemetry::disabled());
        let mut bad = request();
        bad.impl_blif = "not blif at all".into();
        let outcome = runner.run(&bad, &JobControl::unbounded());
        assert_eq!(outcome.status, JobStatus::Failed);
        assert!(outcome.detail.contains("bad impl netlist"));
        let mut bad = request();
        bad.spec_blif = ".model broken\n.names\n".into();
        let outcome = runner.run(&bad, &JobControl::unbounded());
        assert_eq!(outcome.status, JobStatus::Failed);
    }

    #[test]
    fn pre_cancelled_control_reports_cancelled_with_an_honest_patch() {
        let runner = EngineRunner::new(EcoOptions::with_seed(3), Telemetry::disabled());
        let control = JobControl::unbounded();
        control.cancel_flag().store(true, Ordering::Relaxed);
        let outcome = runner.run(&request(), &control);
        assert_eq!(outcome.status, JobStatus::Cancelled);
        assert!(
            outcome.degradations > 0,
            "cancelled work degrades, honestly"
        );
        assert!(!outcome.patch_blif.is_empty(), "fallback patch still ships");
    }

    #[test]
    fn expired_deadline_degrades_rather_than_hanging() {
        let runner = EngineRunner::new(EcoOptions::with_seed(3), Telemetry::disabled());
        let control = JobControl::new(
            JobControl::unbounded().cancel_flag(),
            Some(Instant::now() - Duration::from_millis(1)),
        );
        let outcome = runner.run(&request(), &control);
        assert_eq!(outcome.status, JobStatus::Degraded);
        assert!(outcome.degradations > 0);
    }

    #[test]
    fn client_seed_and_samples_override_the_base_options() {
        let runner = EngineRunner::new(EcoOptions::with_seed(1), Telemetry::disabled());
        let mut req = request();
        req.seed = 99;
        req.num_samples = 16;
        let options = runner.job_options(&req);
        assert_eq!(options.seed, 99);
        assert_eq!(options.num_samples, 16);
        req.num_samples = 0;
        assert_eq!(
            runner.job_options(&req).num_samples,
            EcoOptions::default().num_samples
        );
    }
}
