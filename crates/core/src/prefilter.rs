//! Bit-parallel simulation pre-filter for rewiring candidates.
//!
//! Before a candidate consumes one of the per-output SAT-validation slots,
//! a cheap screen applies its rewires to a scratch copy of the
//! implementation and compares the patched target output against the
//! specification over the accumulated *sample bank* with 64-wide parallel
//! simulation. The bank is strictly larger than the sampling domain the
//! candidate was endorsed by — it also holds refinement counterexamples
//! and assignments learned while searching other outputs — so the screen
//! rejects candidates the domain was too coarse to see through, without
//! paying for SAT.
//!
//! The screen is *sound*: a [`Validation::Valid`](crate::validate::Validation)
//! patch must agree with the specification on the target output for every
//! input assignment, in particular on every banked one, so any mismatch
//! proves the candidate invalid and SAT would have rejected it too. A
//! structurally infeasible rewire (one that would create a cycle) is
//! screened for the same reason — validation maps it to `Infeasible`.
//! Candidates that pass still go through full SAT validation; the screen
//! never admits anything, it only refuses provably dead candidates early.

use std::collections::HashMap;

use eco_netlist::{sim, Circuit, NetId, NetlistError};

use crate::correspond::{Correspondence, OutputPair};
use crate::validate::{apply_rewires, CandidateRewire};
use crate::EcoError;

/// Verdict of the simulation screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Screen {
    /// The candidate disagrees with the specification on at least one
    /// banked assignment, or is structurally infeasible: provably not
    /// valid, so it must not consume a SAT-validation slot.
    Screened,
    /// The candidate matches the specification on every banked
    /// assignment. SAT validation must still confirm it — the bank is
    /// finite, so passing is necessary but not sufficient.
    Pass,
}

/// The specification's reference bits over one output's sample bank,
/// computed once per domain attempt and reused for every candidate screen.
#[derive(Debug)]
pub struct PrefilterBank {
    /// The banked input assignments, in implementation input order.
    bank: Vec<Vec<bool>>,
    /// Specification value of the target output per 64-sample block,
    /// tail bits of the last block already masked to zero.
    spec_bits: Vec<u64>,
}

impl PrefilterBank {
    /// Simulates the specification's target output over `bank`.
    ///
    /// # Errors
    ///
    /// Propagates [`EcoError`] from specification simulation.
    pub fn build(
        spec: &Circuit,
        corr: &Correspondence,
        pair: &OutputPair,
        bank: &[Vec<bool>],
    ) -> Result<Self, EcoError> {
        let spec_root = spec.outputs()[pair.spec_index as usize].net();
        let spec_bank: Vec<Vec<bool>> = bank.iter().map(|s| corr.spec_assignment(s)).collect();
        let blocks = sim::simulate_patterns(spec, &spec_bank).map_err(EcoError::from)?;
        let spec_bits = mask_tail(
            blocks.iter().map(|b| b[spec_root.index()]).collect(),
            bank.len(),
        );
        Ok(PrefilterBank {
            bank: bank.to_vec(),
            spec_bits,
        })
    }

    /// Screens one candidate: applies its rewires to a scratch copy of
    /// `base` and compares the patched target output against the banked
    /// specification bits.
    ///
    /// # Errors
    ///
    /// Propagates [`EcoError`] on malformed netlist references;
    /// `WouldCycle` is a verdict ([`Screen::Screened`]), not an error.
    pub fn screen(
        &self,
        base: &Circuit,
        spec: &Circuit,
        rewires: &[CandidateRewire],
        pair: &OutputPair,
    ) -> Result<Screen, EcoError> {
        if self.bank.is_empty() {
            return Ok(Screen::Pass);
        }
        let mut patched = base.clone();
        let mut clones: HashMap<NetId, NetId> = HashMap::new();
        match apply_rewires(&mut patched, spec, rewires, &mut clones) {
            Ok(_) => {}
            Err(NetlistError::WouldCycle { .. }) => return Ok(Screen::Screened),
            Err(e) => return Err(EcoError::from(e)),
        }
        let blocks = sim::simulate_patterns(&patched, &self.bank).map_err(EcoError::from)?;
        // Read the target net *after* apply: an output-pin rewire changes it.
        let target = patched.outputs()[pair.impl_index as usize].net();
        let got = mask_tail(
            blocks.iter().map(|b| b[target.index()]).collect(),
            self.bank.len(),
        );
        if got == self.spec_bits {
            Ok(Screen::Pass)
        } else {
            Ok(Screen::Screened)
        }
    }
}

/// Zeroes the bits of the last block beyond `len` assignments — they
/// simulate the all-zero padding pattern, not a real banked sample.
fn mask_tail(mut blocks: Vec<u64>, len: usize) -> Vec<u64> {
    let nblocks = blocks.len();
    if let Some(last) = blocks.last_mut() {
        let rem = len - (nblocks - 1) * 64;
        if rem < 64 {
            *last &= (1u64 << rem) - 1;
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewire_nets::RewireCandidate;
    use eco_netlist::{GateKind, Pin};

    /// impl: y = a AND b; spec: y = a OR b — distinguishable on (0,1).
    fn pairs() -> (Circuit, Circuit, Correspondence, OutputPair) {
        let mut im = Circuit::new("impl");
        let a = im.add_input("a");
        let b = im.add_input("b");
        let g = im.add_gate(GateKind::And, &[a, b]).unwrap();
        im.add_output("y", g);

        let mut sp = Circuit::new("spec");
        let a = sp.add_input("a");
        let b = sp.add_input("b");
        let g = sp.add_gate(GateKind::Or, &[a, b]).unwrap();
        sp.add_output("y", g);

        let corr = Correspondence::build(&im, &sp).unwrap();
        let pair = corr.outputs[0].clone();
        (im, sp, corr, pair)
    }

    #[test]
    fn mismatching_candidate_is_screened_and_agreeing_candidate_passes() {
        let (im, sp, corr, pair) = pairs();
        let bank = vec![
            vec![false, true], // spec 1, impl(AND) 0: distinguishing
            vec![true, true],
        ];
        let pf = PrefilterBank::build(&sp, &corr, &pair, &bank).unwrap();

        // Rewire the AND gate's input 0 to net b (index 1): y = b AND b = b.
        // On (0,1): b=1 matches spec OR=1; on (1,1): 1 == 1. Passes.
        let to_b = CandidateRewire {
            pin: Pin::Gate {
                node: im.outputs()[0].net().source(),
                pos: 0,
            },
            candidate: RewireCandidate {
                net: NetId::from_index(1),
                from_spec: false,
                utility: 0.0,
                arrival: 0.0,
            },
        };
        let verdict = pf
            .screen(&im, &sp, std::slice::from_ref(&to_b), &pair)
            .unwrap();
        assert_eq!(verdict, Screen::Pass);

        // Rewire input 0 to net a (identity on this pin): y stays a AND b,
        // which mismatches the spec on the first banked sample — screened.
        let to_a = CandidateRewire {
            pin: to_b.pin,
            candidate: RewireCandidate {
                net: NetId::from_index(0),
                from_spec: false,
                utility: 0.0,
                arrival: 0.0,
            },
        };
        let verdict = pf.screen(&im, &sp, &[to_a], &pair).unwrap();
        assert_eq!(verdict, Screen::Screened);
    }

    #[test]
    fn empty_bank_passes_everything() {
        let (im, sp, corr, pair) = pairs();
        let pf = PrefilterBank::build(&sp, &corr, &pair, &[]).unwrap();
        let verdict = pf.screen(&im, &sp, &[], &pair).unwrap();
        assert_eq!(verdict, Screen::Pass);
    }
}
