//! Pipeline-level differential fuzzing.
//!
//! Re-exports the netlist-level machinery of the [`eco-fuzz`](eco_fuzz)
//! crate (scenario generation, the simulation/SAT/BDD oracles, the
//! shrinker, and the `.eco-repro` format) and layers the checks only this
//! crate can perform on top: full [`Syseco`] rectification at one and four
//! workers with byte-identical patched netlists, patch validity against
//! the spec, and cold/warm replay through the persistent cache. The
//! [`FuzzRunner`] drives all of it from a single seed; the `syseco-fuzz`
//! binary is a thin CLI over this module. See DESIGN.md §12.

use std::path::{Path, PathBuf};

use eco_netlist::{write_blif, Circuit};

pub use eco_fuzz::*;

use crate::{verify_rectification, EcoOptions, Syseco};

/// Configuration of a [`FuzzRunner`].
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Scenario size and mutation ranges.
    pub scenario: ScenarioConfig,
    /// Run the cache cold/warm replay oracle every `n`-th iteration
    /// (`0` disables it). Cache checks touch the filesystem, so they are
    /// sampled rather than run on every case.
    pub cache_every: u64,
    /// Predicate-evaluation budget for shrinking a failure.
    pub shrink_budget: usize,
    /// Sampling-domain size handed to the engine (kept small: fuzz
    /// scenarios are tiny and the engine rounds up internally).
    pub num_samples: usize,
    /// Directory for the cache oracle's scratch stores; defaults to the
    /// system temp directory.
    pub scratch_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            scenario: ScenarioConfig::default(),
            cache_every: 25,
            shrink_budget: 400,
            num_samples: 32,
            scratch_dir: None,
        }
    }
}

/// One confirmed failure: where it happened, what fired, and the shrunk
/// replayable pair.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Iteration index within the run.
    pub iteration: u64,
    /// Scenario seed (replayable via [`generate`]).
    pub seed: u64,
    /// Every disagreement the conformance check reported.
    pub disagreements: Vec<Disagreement>,
    /// The shrunk pair plus metadata, ready for [`write_repro`].
    pub repro: Repro,
}

/// Outcome of a [`FuzzRunner::run`].
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iterations: u64,
    /// Iterations on which the cache oracle also ran.
    pub cache_checked: u64,
    /// All confirmed failures, in iteration order.
    pub failures: Vec<FuzzFailure>,
}

/// SplitMix64, used to derive independent per-iteration scenario seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The scenario seed of iteration `i` of a run seeded with `seed`.
pub fn iteration_seed(seed: u64, i: u64) -> u64 {
    splitmix64(seed ^ splitmix64(i))
}

fn engine_options(seed: u64, num_samples: usize, jobs: usize) -> EcoOptions {
    EcoOptions::builder()
        .seed(seed)
        .num_samples(num_samples)
        .jobs(jobs)
        .build()
}

fn rectify_blif(
    implementation: &Circuit,
    spec: &Circuit,
    options: EcoOptions,
    label: &str,
    out: &mut Vec<Disagreement>,
) -> Option<String> {
    match Syseco::new(options).rectify(implementation, spec) {
        Ok(result) => {
            match verify_rectification(&result.patched, spec) {
                Ok(true) => {}
                Ok(false) => out.push(Disagreement {
                    check: format!("pipeline:patch-invalid:{label}"),
                    output: None,
                    detail: "patched implementation is not equivalent to the spec".into(),
                }),
                Err(e) => out.push(Disagreement {
                    check: format!("pipeline:verify-error:{label}"),
                    output: None,
                    detail: e.to_string(),
                }),
            }
            Some(write_blif(&result.patched))
        }
        Err(e) => {
            out.push(Disagreement {
                check: format!("pipeline:rectify-error:{label}"),
                output: None,
                detail: e.to_string(),
            });
            None
        }
    }
}

/// Runs the engine-level conformance checks on one pair.
///
/// Performed checks: rectify at `jobs=1` and `jobs=4` both produce valid
/// patches and byte-identical patched netlists; with `cache_scratch` set,
/// a cold and a warm run through a fresh cache store reproduce the same
/// bytes again. Netlist-level oracle agreement is *not* included — combine
/// with [`check_conformance`] (as [`check_case`] does) for the full
/// matrix.
pub fn check_pipeline(
    implementation: &Circuit,
    spec: &Circuit,
    seed: u64,
    num_samples: usize,
    cache_scratch: Option<&Path>,
) -> Vec<Disagreement> {
    let mut out = Vec::new();
    let b1 = rectify_blif(
        implementation,
        spec,
        engine_options(seed, num_samples, 1),
        "jobs1",
        &mut out,
    );
    let b4 = rectify_blif(
        implementation,
        spec,
        engine_options(seed, num_samples, 4),
        "jobs4",
        &mut out,
    );
    if let (Some(b1), Some(b4)) = (&b1, &b4) {
        if b1 != b4 {
            out.push(Disagreement {
                check: "pipeline:jobs-determinism".into(),
                output: None,
                detail: "patched netlists differ between jobs=1 and jobs=4".into(),
            });
        }
    }
    if let Some(dir) = cache_scratch {
        let cache_run = |label: &str, out: &mut Vec<Disagreement>| {
            let options = EcoOptions::builder()
                .seed(seed)
                .num_samples(num_samples)
                .jobs(1)
                .cache_dir(dir.to_path_buf())
                .build();
            rectify_blif(implementation, spec, options, label, out)
        };
        let cold = cache_run("cache-cold", &mut out);
        let warm = cache_run("cache-warm", &mut out);
        for (label, cached) in [("cold", &cold), ("warm", &warm)] {
            if let (Some(plain), Some(cached)) = (&b1, cached) {
                if plain != cached {
                    out.push(Disagreement {
                        check: format!("pipeline:cache-replay-{label}"),
                        output: None,
                        detail: format!(
                            "{label} cached run produced different bytes than the uncached run"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The full conformance matrix on one pair: cross-oracle agreement plus
/// the pipeline checks of [`check_pipeline`].
///
/// # Errors
///
/// [`FuzzError`] for infrastructure failures (ill-formed or
/// port-incompatible pairs); actual conformance violations are returned
/// as [`Disagreement`]s, not errors.
pub fn check_case(
    implementation: &Circuit,
    spec: &Circuit,
    seed: u64,
    num_samples: usize,
    cache_scratch: Option<&Path>,
) -> Result<Vec<Disagreement>, FuzzError> {
    let mut out = check_conformance(implementation, spec, seed)?;
    out.extend(check_pipeline(
        implementation,
        spec,
        seed,
        num_samples,
        cache_scratch,
    ));
    Ok(out)
}

/// Deterministic seed-driven fuzzing loop over generated scenarios.
#[derive(Debug, Clone, Default)]
pub struct FuzzRunner {
    /// Knobs of the loop.
    pub config: FuzzConfig,
}

impl FuzzRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: FuzzConfig) -> Self {
        FuzzRunner { config }
    }

    fn scratch_base(&self) -> PathBuf {
        self.config
            .scratch_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir)
    }

    /// Runs `iters` iterations derived from `seed`, invoking `progress`
    /// after each iteration with `(iteration, failures_so_far)`.
    ///
    /// Fully deterministic for a fixed `(seed, iters, config)`: the same
    /// scenarios are generated, the same checks run (the cache oracle on
    /// every [`FuzzConfig::cache_every`]-th iteration), and any failure
    /// shrinks to the same repro.
    ///
    /// # Errors
    ///
    /// Propagates infrastructure [`FuzzError`]s (scenario generation or
    /// oracle plumbing); conformance violations are collected into the
    /// report instead.
    pub fn run(
        &self,
        seed: u64,
        iters: u64,
        mut progress: impl FnMut(u64, usize),
    ) -> Result<FuzzReport, FuzzError> {
        let mut report = FuzzReport::default();
        for i in 0..iters {
            let scenario_seed = iteration_seed(seed, i);
            let scenario = generate(scenario_seed, &self.config.scenario)?;
            let with_cache = self.config.cache_every != 0 && i % self.config.cache_every == 0;
            let scratch = if with_cache {
                let dir = self.scratch_base().join(format!(
                    "syseco-fuzz-{}-{scenario_seed:016x}",
                    std::process::id()
                ));
                Some(dir)
            } else {
                None
            };
            if with_cache {
                report.cache_checked += 1;
            }
            let disagreements = check_case(
                &scenario.implementation,
                &scenario.spec,
                scenario_seed,
                self.config.num_samples,
                scratch.as_deref(),
            )?;
            if let Some(dir) = &scratch {
                let _ = std::fs::remove_dir_all(dir);
            }
            if !disagreements.is_empty() {
                report
                    .failures
                    .push(self.confirm_failure(i, &scenario, disagreements));
            }
            report.iterations += 1;
            progress(i + 1, report.failures.len());
        }
        Ok(report)
    }

    /// Shrinks a failing scenario and packages it as a [`FuzzFailure`].
    ///
    /// The shrink predicate re-runs the cheap checks only (oracles and the
    /// uncached pipeline); a failure that only the cache oracle can see is
    /// still recorded, just with the unshrunk pair.
    fn confirm_failure(
        &self,
        iteration: u64,
        scenario: &Scenario,
        disagreements: Vec<Disagreement>,
    ) -> FuzzFailure {
        let seed = scenario.seed;
        let num_samples = self.config.num_samples;
        let outcome = shrink_pair(
            &scenario.implementation,
            &scenario.spec,
            |i, s| {
                check_case(i, s, seed, num_samples, None)
                    .map(|d| !d.is_empty())
                    .unwrap_or(false)
            },
            self.config.shrink_budget,
        );
        let check = disagreements
            .first()
            .map(|d| d.check.clone())
            .unwrap_or_default();
        let detail = disagreements
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" | ");
        FuzzFailure {
            iteration,
            seed,
            disagreements,
            repro: Repro {
                seed,
                iteration,
                check,
                detail,
                fault: None,
                implementation: outcome.implementation,
                spec: outcome.spec,
            },
        }
    }

    /// Re-runs the conformance matrix on a parsed repro (the `replay` CLI
    /// verb). The cache oracle is included, using a scratch store.
    ///
    /// A repro that embeds a chaos fault plan (`fault` line) is instead
    /// replayed through `chaos::check_chaos_case` with the same plan
    /// re-armed; this requires the `fault-injection` feature.
    ///
    /// # Errors
    ///
    /// Propagates infrastructure [`FuzzError`]s, and rejects fault-bearing
    /// repros in builds without `fault-injection`.
    pub fn replay(&self, repro: &Repro) -> Result<Vec<Disagreement>, FuzzError> {
        if repro.fault.is_some() {
            #[cfg(any(test, feature = "fault-injection"))]
            {
                let runner = chaos::ChaosRunner::new(chaos::ChaosConfig {
                    scenario: self.config.scenario.clone(),
                    num_samples: self.config.num_samples,
                    scratch_dir: self.config.scratch_dir.clone(),
                });
                return Ok(runner.replay(repro).disagreements);
            }
            #[cfg(not(any(test, feature = "fault-injection")))]
            return Err(FuzzError::Repro {
                line: 0,
                reason: "repro embeds a chaos fault plan; rebuild with \
                         --features fault-injection to replay it"
                    .into(),
            });
        }
        let dir = self.scratch_base().join(format!(
            "syseco-fuzz-replay-{}-{:016x}",
            std::process::id(),
            repro.seed
        ));
        let result = check_case(
            &repro.implementation,
            &repro.spec,
            repro.seed,
            self.config.num_samples,
            Some(&dir),
        );
        let _ = std::fs::remove_dir_all(&dir);
        result
    }
}

/// Systematic chaos fault-sweeping (DESIGN.md §13).
///
/// For every fuzz-generated scenario, every registered fault point of
/// [`FaultPlan`](crate::FaultPlan) is armed in turn against a full
/// checkpointed rectification, and the robustness invariant is asserted:
/// **every run ends in a verified patch or a clean degradation report —
/// never corruption, a poisoned lock, or a silently-missing output.** A
/// simulated crash (`abort:*` faults) additionally asserts crash-safety:
/// resuming from the checkpoint directory without faults must succeed and
/// produce a patched netlist byte-identical to an undisturbed run's.
///
/// Only compiled under `cfg(test)` or the `fault-injection` feature; the
/// `syseco-fuzz chaos` verb is the CLI over [`chaos::ChaosRunner`].
#[cfg(any(test, feature = "fault-injection"))]
pub mod chaos {
    use std::collections::BTreeMap;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::{Path, PathBuf};

    use eco_netlist::{write_blif, Circuit};

    use super::{generate, iteration_seed, Disagreement, FuzzError, Repro, ScenarioConfig};
    use crate::fault::FaultPlan;
    use crate::{verify_rectification, Budget, EcoError, EcoOptions, EcoResult, Session};

    /// Configuration of a [`ChaosRunner`].
    #[derive(Debug, Clone)]
    pub struct ChaosConfig {
        /// Scenario size and mutation ranges.
        pub scenario: ScenarioConfig,
        /// Sampling-domain size handed to the engine.
        pub num_samples: usize,
        /// Directory for checkpoint scratch stores; defaults to the system
        /// temp directory.
        pub scratch_dir: Option<PathBuf>,
    }

    impl Default for ChaosConfig {
        fn default() -> Self {
            ChaosConfig {
                scenario: ScenarioConfig::default(),
                num_samples: 32,
                scratch_dir: None,
            }
        }
    }

    /// One invariant violation: the scenario, the fault plan that broke it,
    /// and a replayable repro embedding that plan.
    #[derive(Debug, Clone)]
    pub struct ChaosViolation {
        /// Scenario index within the sweep.
        pub iteration: u64,
        /// Scenario seed.
        pub seed: u64,
        /// The fault-plan spec that was armed.
        pub fault: String,
        /// Every invariant the case violated.
        pub disagreements: Vec<Disagreement>,
        /// Replayable repro (`fault` embedded, so `syseco-fuzz replay`
        /// re-arms the plan).
        pub repro: Repro,
    }

    /// Outcome of a [`ChaosRunner::run`].
    #[derive(Debug, Clone, Default)]
    pub struct ChaosReport {
        /// Scenarios generated.
        pub scenarios: u64,
        /// Individual (scenario × fault-point) runs executed.
        pub runs: u64,
        /// Runs that ended in a simulated crash and were resumed from their
        /// checkpoint directory.
        pub aborted: u64,
        /// Runs that completed with a non-empty degradation report.
        pub degraded: u64,
        /// How many times each fault point actually fired, by name. A point
        /// whose count stays zero was never reached by any scenario — grow
        /// the sweep rather than trusting it.
        pub coverage: BTreeMap<String, u64>,
        /// All invariant violations, in sweep order.
        pub violations: Vec<ChaosViolation>,
    }

    /// What one chaos case concluded, beyond pass/fail.
    #[derive(Debug, Clone, Default)]
    pub struct ChaosOutcome {
        /// Invariant violations (empty on a clean case).
        pub disagreements: Vec<Disagreement>,
        /// The faulted run ended in `EcoError::InjectedAbort` and resumed.
        pub aborted: bool,
        /// The faulted run completed with recorded degradations.
        pub degraded: bool,
        /// Faults that actually fired during the faulted run.
        pub faults_fired: u64,
    }

    fn engine_options(seed: u64, num_samples: usize, checkpoint_dir: Option<&Path>) -> EcoOptions {
        let builder = EcoOptions::builder()
            .seed(seed)
            .num_samples(num_samples)
            .jobs(1);
        match checkpoint_dir {
            // Faulted runs get both durable stores: the checkpoint under
            // `ckpt/`, a result cache under `cache/` — so the cache-*
            // fault points have I/O to hit. Both are re-verified reuse,
            // so neither changes the answer vs. the plain reference run.
            Some(dir) => builder
                .checkpoint_dir(dir.join("ckpt"))
                .cache_dir(dir.join("cache"))
                .build(),
            None => builder.build(),
        }
    }

    fn disagree(check: &str, detail: String) -> Disagreement {
        Disagreement {
            check: format!("chaos:{check}"),
            output: None,
            detail,
        }
    }

    /// Runs one engine pass under `budget`, catching panics that escape the
    /// engine (they must not — per-output panic isolation is part of the
    /// invariant) and verifying any returned patch. Returns the patched
    /// netlist bytes on success.
    fn guarded_run(
        implementation: &Circuit,
        spec: &Circuit,
        options: &EcoOptions,
        budget: &Budget,
        label: &str,
        out: &mut Vec<Disagreement>,
    ) -> Result<Option<String>, EcoError> {
        let session = Session::new(options.clone()).with_telemetry(&crate::Telemetry::enabled());
        let run = catch_unwind(AssertUnwindSafe(|| {
            session.run_with_budget(implementation, spec, budget)
        }));
        // Taking a metrics snapshot after the run proves no registry lock
        // was left poisoned by an injected panic.
        let snapshot = catch_unwind(AssertUnwindSafe(|| session.metrics_snapshot()));
        if snapshot.is_err() {
            out.push(disagree(
                "poisoned-metrics",
                format!("metrics snapshot panicked after the {label} run"),
            ));
        }
        let result: Result<EcoResult, EcoError> = match run {
            Ok(r) => r,
            Err(_) => {
                out.push(disagree(
                    "escaped-panic",
                    format!("a panic escaped the engine during the {label} run"),
                ));
                return Ok(None);
            }
        };
        match result {
            Ok(result) => {
                match verify_rectification(&result.patched, spec) {
                    Ok(true) => {}
                    Ok(false) => out.push(disagree(
                        "unverified-patch",
                        format!("the {label} run returned a patch that fails verification"),
                    )),
                    Err(e) => out.push(disagree(
                        "verify-error",
                        format!("verifying the {label} run's patch errored: {e}"),
                    )),
                }
                Ok(Some(write_blif(&result.patched)))
            }
            Err(e) => Err(e),
        }
    }

    /// Runs the chaos invariant check for one `(pair, fault plan)` case.
    ///
    /// `scratch` hosts the case's checkpoint directory; it is created and
    /// cleaned up here.
    pub fn check_chaos_case(
        implementation: &Circuit,
        spec: &Circuit,
        seed: u64,
        num_samples: usize,
        fault: &str,
        scratch: &Path,
    ) -> ChaosOutcome {
        let mut outcome = ChaosOutcome::default();
        let plan = match FaultPlan::parse(fault) {
            Ok(plan) => plan,
            Err(e) => {
                outcome
                    .disagreements
                    .push(disagree("bad-plan", format!("{fault:?}: {e}")));
                return outcome;
            }
        };

        // Reference: no faults, no checkpointing. The scenario generator
        // only produces rectifiable pairs, so a reference failure is an
        // infrastructure problem, not a chaos finding.
        let reference = match guarded_run(
            implementation,
            spec,
            &engine_options(seed, num_samples, None),
            &Budget::unlimited(),
            "reference",
            &mut outcome.disagreements,
        ) {
            Ok(Some(blif)) => blif,
            Ok(None) => return outcome,
            Err(e) => {
                outcome
                    .disagreements
                    .push(disagree("reference-error", e.to_string()));
                return outcome;
            }
        };

        let ckpt = scratch.join(format!(
            "chaos-{seed:016x}-{}",
            fault.replace([':', '@', ','], "_")
        ));
        let _ = std::fs::remove_dir_all(&ckpt);

        // Faulted run: checkpointing on, the plan armed.
        let budget = Budget::unlimited().with_fault_plan(plan);
        let options = engine_options(seed, num_samples, Some(&ckpt));
        let faulted = guarded_run(
            implementation,
            spec,
            &options,
            &budget,
            "faulted",
            &mut outcome.disagreements,
        );
        outcome.faults_fired = budget.faults_fired();
        match faulted {
            Ok(Some(_)) => {
                // Completed despite the faults: the patch already verified
                // inside guarded_run; note whether it degraded cleanly.
                outcome.degraded = budget.degrade_reason().is_some();
            }
            Ok(None) => {} // an escaped panic was already recorded
            Err(EcoError::InjectedAbort) => {
                // Simulated crash. Resume without faults: the run must
                // complete, verify, and reproduce the reference bytes.
                outcome.aborted = true;
                match guarded_run(
                    implementation,
                    spec,
                    &options,
                    &Budget::unlimited(),
                    "resumed",
                    &mut outcome.disagreements,
                ) {
                    Ok(Some(resumed)) => {
                        if resumed != reference {
                            outcome.disagreements.push(disagree(
                                "resume-divergence",
                                "resumed run produced different bytes than the undisturbed run"
                                    .into(),
                            ));
                        }
                    }
                    Ok(None) => {}
                    Err(e) => outcome
                        .disagreements
                        .push(disagree("resume-error", e.to_string())),
                }
            }
            Err(e) => outcome.disagreements.push(disagree(
                "unexpected-error",
                format!("faulted run errored with {e} (only injected aborts may error)"),
            )),
        }
        let _ = std::fs::remove_dir_all(&ckpt);
        outcome
    }

    /// Sweeps every registered fault point over generated scenarios.
    #[derive(Debug, Clone, Default)]
    pub struct ChaosRunner {
        /// Knobs of the sweep.
        pub config: ChaosConfig,
    }

    impl ChaosRunner {
        /// Creates a runner with the given configuration.
        pub fn new(config: ChaosConfig) -> Self {
            ChaosRunner { config }
        }

        /// Runs `scenarios` generated scenarios × every registered fault
        /// point, invoking `progress` after each scenario with
        /// `(scenario, violations_so_far)`.
        ///
        /// Deterministic for a fixed `(seed, scenarios, config)` up to
        /// wall-clock-free behavior: the same scenarios, plans, and
        /// verdicts.
        ///
        /// # Errors
        ///
        /// Propagates scenario-generation [`FuzzError`]s; invariant
        /// violations are collected into the report instead.
        pub fn run(
            &self,
            seed: u64,
            scenarios: u64,
            mut progress: impl FnMut(u64, usize),
        ) -> Result<ChaosReport, FuzzError> {
            let scratch = self
                .config
                .scratch_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir)
                .join(format!("syseco-chaos-{}", std::process::id()));
            let points = FaultPlan::point_names();
            let mut report = ChaosReport::default();
            for name in &points {
                report.coverage.insert(name.clone(), 0);
            }
            for i in 0..scenarios {
                let scenario_seed = iteration_seed(seed ^ 0xc4a05, i);
                let scenario = generate(scenario_seed, &self.config.scenario)?;
                for name in &points {
                    let fault = format!("{name}@1");
                    let outcome = check_chaos_case(
                        &scenario.implementation,
                        &scenario.spec,
                        scenario_seed,
                        self.config.num_samples,
                        &fault,
                        &scratch,
                    );
                    report.runs += 1;
                    report.aborted += u64::from(outcome.aborted);
                    report.degraded += u64::from(outcome.degraded);
                    if outcome.faults_fired > 0 {
                        *report
                            .coverage
                            .get_mut(name.as_str())
                            .expect("seeded above") += 1;
                    }
                    if !outcome.disagreements.is_empty() {
                        let detail = outcome
                            .disagreements
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" | ");
                        let check = outcome
                            .disagreements
                            .first()
                            .map(|d| d.check.clone())
                            .unwrap_or_default();
                        report.violations.push(ChaosViolation {
                            iteration: i,
                            seed: scenario_seed,
                            fault: fault.clone(),
                            disagreements: outcome.disagreements,
                            repro: Repro {
                                seed: scenario_seed,
                                iteration: i,
                                check,
                                detail,
                                fault: Some(fault),
                                implementation: scenario.implementation.clone(),
                                spec: scenario.spec.clone(),
                            },
                        });
                    }
                }
                report.scenarios += 1;
                progress(i + 1, report.violations.len());
            }
            let _ = std::fs::remove_dir_all(&scratch);
            Ok(report)
        }

        /// Replays one chaos repro: re-runs the invariant check with the
        /// embedded fault plan (or no faults when the repro carries none).
        pub fn replay(&self, repro: &Repro) -> ChaosOutcome {
            let scratch = self
                .config
                .scratch_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir)
                .join(format!("syseco-chaos-replay-{}", std::process::id()));
            let outcome = check_chaos_case(
                &repro.implementation,
                &repro.spec,
                repro.seed,
                self.config.num_samples,
                repro.fault.as_deref().unwrap_or(""),
                &scratch,
            );
            let _ = std::fs::remove_dir_all(&scratch);
            outcome
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;

    #[test]
    fn iteration_seeds_are_spread() {
        let seeds: std::collections::HashSet<u64> =
            (0..100).map(|i| iteration_seed(1, i)).collect();
        assert_eq!(seeds.len(), 100);
        assert_ne!(iteration_seed(1, 0), iteration_seed(2, 0));
    }

    #[test]
    fn pipeline_check_is_clean_on_a_simple_pair() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let mut s = Circuit::new("spec");
        let a = s.add_input("a");
        let b = s.add_input("b");
        let g = s.add_gate(GateKind::Or, &[a, b]).unwrap();
        s.add_output("y", g);
        let out = check_pipeline(&c, &s, 7, 32, None);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn short_run_is_deterministic_and_clean() {
        let runner = FuzzRunner::new(FuzzConfig {
            cache_every: 0,
            ..FuzzConfig::default()
        });
        let a = runner.run(5, 3, |_, _| {}).unwrap();
        let b = runner.run(5, 3, |_, _| {}).unwrap();
        assert_eq!(a.iterations, 3);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert_eq!(b.failures.len(), a.failures.len());
    }

    #[test]
    fn chaos_sweep_holds_every_invariant_on_one_scenario() {
        let runner = chaos::ChaosRunner::new(chaos::ChaosConfig::default());
        let report = runner.run(11, 1, |_, _| {}).unwrap();
        assert_eq!(report.scenarios, 1);
        assert_eq!(
            report.runs,
            crate::FaultPlan::point_names().len() as u64,
            "one faulted run per registered point"
        );
        assert!(
            report.violations.is_empty(),
            "chaos invariant violations: {:#?}",
            report.violations
        );
        // Simulated crashes happened and were resumed.
        assert!(report.aborted > 0, "no abort point fired: {report:?}");
        // Points every run must pass through actually fired. Cache points
        // stay at zero here (the sweep runs without a result cache), and
        // late spans (e.g. verify) may not be reached on tiny scenarios.
        for point in [
            "abort:run",
            "abort:search",
            "search-panic",
            "cancel:search",
            "bdd-gc",
        ] {
            assert!(
                report.coverage[point] > 0,
                "fault point {point} never fired: {:?}",
                report.coverage
            );
        }
    }

    #[test]
    fn chaos_replay_rearms_the_embedded_fault_plan() {
        let scenario = generate(23, &ScenarioConfig::default()).unwrap();
        let repro = Repro {
            seed: 23,
            iteration: 0,
            check: "chaos:resume-divergence".into(),
            detail: "synthetic".into(),
            fault: Some("abort:merge@1".into()),
            implementation: scenario.implementation,
            spec: scenario.spec,
        };
        let runner = FuzzRunner::new(FuzzConfig::default());
        // Crash at the merge span, then resume: the invariant must hold, so
        // a fault-bearing repro replays clean.
        let disagreements = runner.replay(&repro).unwrap();
        assert!(disagreements.is_empty(), "{disagreements:?}");
    }
}
