//! Pipeline-level differential fuzzing.
//!
//! Re-exports the netlist-level machinery of the [`eco-fuzz`](eco_fuzz)
//! crate (scenario generation, the simulation/SAT/BDD oracles, the
//! shrinker, and the `.eco-repro` format) and layers the checks only this
//! crate can perform on top: full [`Syseco`] rectification at one and four
//! workers with byte-identical patched netlists, patch validity against
//! the spec, and cold/warm replay through the persistent cache. The
//! [`FuzzRunner`] drives all of it from a single seed; the `syseco-fuzz`
//! binary is a thin CLI over this module. See DESIGN.md §12.

use std::path::{Path, PathBuf};

use eco_netlist::{write_blif, Circuit};

pub use eco_fuzz::*;

use crate::{verify_rectification, EcoOptions, Syseco};

/// Configuration of a [`FuzzRunner`].
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Scenario size and mutation ranges.
    pub scenario: ScenarioConfig,
    /// Run the cache cold/warm replay oracle every `n`-th iteration
    /// (`0` disables it). Cache checks touch the filesystem, so they are
    /// sampled rather than run on every case.
    pub cache_every: u64,
    /// Predicate-evaluation budget for shrinking a failure.
    pub shrink_budget: usize,
    /// Sampling-domain size handed to the engine (kept small: fuzz
    /// scenarios are tiny and the engine rounds up internally).
    pub num_samples: usize,
    /// Directory for the cache oracle's scratch stores; defaults to the
    /// system temp directory.
    pub scratch_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            scenario: ScenarioConfig::default(),
            cache_every: 25,
            shrink_budget: 400,
            num_samples: 32,
            scratch_dir: None,
        }
    }
}

/// One confirmed failure: where it happened, what fired, and the shrunk
/// replayable pair.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Iteration index within the run.
    pub iteration: u64,
    /// Scenario seed (replayable via [`generate`]).
    pub seed: u64,
    /// Every disagreement the conformance check reported.
    pub disagreements: Vec<Disagreement>,
    /// The shrunk pair plus metadata, ready for [`write_repro`].
    pub repro: Repro,
}

/// Outcome of a [`FuzzRunner::run`].
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iterations: u64,
    /// Iterations on which the cache oracle also ran.
    pub cache_checked: u64,
    /// All confirmed failures, in iteration order.
    pub failures: Vec<FuzzFailure>,
}

/// SplitMix64, used to derive independent per-iteration scenario seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The scenario seed of iteration `i` of a run seeded with `seed`.
pub fn iteration_seed(seed: u64, i: u64) -> u64 {
    splitmix64(seed ^ splitmix64(i))
}

fn engine_options(seed: u64, num_samples: usize, jobs: usize) -> EcoOptions {
    EcoOptions::builder()
        .seed(seed)
        .num_samples(num_samples)
        .jobs(jobs)
        .build()
}

fn rectify_blif(
    implementation: &Circuit,
    spec: &Circuit,
    options: EcoOptions,
    label: &str,
    out: &mut Vec<Disagreement>,
) -> Option<String> {
    match Syseco::new(options).rectify(implementation, spec) {
        Ok(result) => {
            match verify_rectification(&result.patched, spec) {
                Ok(true) => {}
                Ok(false) => out.push(Disagreement {
                    check: format!("pipeline:patch-invalid:{label}"),
                    output: None,
                    detail: "patched implementation is not equivalent to the spec".into(),
                }),
                Err(e) => out.push(Disagreement {
                    check: format!("pipeline:verify-error:{label}"),
                    output: None,
                    detail: e.to_string(),
                }),
            }
            Some(write_blif(&result.patched))
        }
        Err(e) => {
            out.push(Disagreement {
                check: format!("pipeline:rectify-error:{label}"),
                output: None,
                detail: e.to_string(),
            });
            None
        }
    }
}

/// Runs the engine-level conformance checks on one pair.
///
/// Performed checks: rectify at `jobs=1` and `jobs=4` both produce valid
/// patches and byte-identical patched netlists; with `cache_scratch` set,
/// a cold and a warm run through a fresh cache store reproduce the same
/// bytes again. Netlist-level oracle agreement is *not* included — combine
/// with [`check_conformance`] (as [`check_case`] does) for the full
/// matrix.
pub fn check_pipeline(
    implementation: &Circuit,
    spec: &Circuit,
    seed: u64,
    num_samples: usize,
    cache_scratch: Option<&Path>,
) -> Vec<Disagreement> {
    let mut out = Vec::new();
    let b1 = rectify_blif(
        implementation,
        spec,
        engine_options(seed, num_samples, 1),
        "jobs1",
        &mut out,
    );
    let b4 = rectify_blif(
        implementation,
        spec,
        engine_options(seed, num_samples, 4),
        "jobs4",
        &mut out,
    );
    if let (Some(b1), Some(b4)) = (&b1, &b4) {
        if b1 != b4 {
            out.push(Disagreement {
                check: "pipeline:jobs-determinism".into(),
                output: None,
                detail: "patched netlists differ between jobs=1 and jobs=4".into(),
            });
        }
    }
    if let Some(dir) = cache_scratch {
        let cache_run = |label: &str, out: &mut Vec<Disagreement>| {
            let options = EcoOptions::builder()
                .seed(seed)
                .num_samples(num_samples)
                .jobs(1)
                .cache_dir(dir.to_path_buf())
                .build();
            rectify_blif(implementation, spec, options, label, out)
        };
        let cold = cache_run("cache-cold", &mut out);
        let warm = cache_run("cache-warm", &mut out);
        for (label, cached) in [("cold", &cold), ("warm", &warm)] {
            if let (Some(plain), Some(cached)) = (&b1, cached) {
                if plain != cached {
                    out.push(Disagreement {
                        check: format!("pipeline:cache-replay-{label}"),
                        output: None,
                        detail: format!(
                            "{label} cached run produced different bytes than the uncached run"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The full conformance matrix on one pair: cross-oracle agreement plus
/// the pipeline checks of [`check_pipeline`].
///
/// # Errors
///
/// [`FuzzError`] for infrastructure failures (ill-formed or
/// port-incompatible pairs); actual conformance violations are returned
/// as [`Disagreement`]s, not errors.
pub fn check_case(
    implementation: &Circuit,
    spec: &Circuit,
    seed: u64,
    num_samples: usize,
    cache_scratch: Option<&Path>,
) -> Result<Vec<Disagreement>, FuzzError> {
    let mut out = check_conformance(implementation, spec, seed)?;
    out.extend(check_pipeline(
        implementation,
        spec,
        seed,
        num_samples,
        cache_scratch,
    ));
    Ok(out)
}

/// Deterministic seed-driven fuzzing loop over generated scenarios.
#[derive(Debug, Clone, Default)]
pub struct FuzzRunner {
    /// Knobs of the loop.
    pub config: FuzzConfig,
}

impl FuzzRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: FuzzConfig) -> Self {
        FuzzRunner { config }
    }

    fn scratch_base(&self) -> PathBuf {
        self.config
            .scratch_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir)
    }

    /// Runs `iters` iterations derived from `seed`, invoking `progress`
    /// after each iteration with `(iteration, failures_so_far)`.
    ///
    /// Fully deterministic for a fixed `(seed, iters, config)`: the same
    /// scenarios are generated, the same checks run (the cache oracle on
    /// every [`FuzzConfig::cache_every`]-th iteration), and any failure
    /// shrinks to the same repro.
    ///
    /// # Errors
    ///
    /// Propagates infrastructure [`FuzzError`]s (scenario generation or
    /// oracle plumbing); conformance violations are collected into the
    /// report instead.
    pub fn run(
        &self,
        seed: u64,
        iters: u64,
        mut progress: impl FnMut(u64, usize),
    ) -> Result<FuzzReport, FuzzError> {
        let mut report = FuzzReport::default();
        for i in 0..iters {
            let scenario_seed = iteration_seed(seed, i);
            let scenario = generate(scenario_seed, &self.config.scenario)?;
            let with_cache = self.config.cache_every != 0 && i % self.config.cache_every == 0;
            let scratch = if with_cache {
                let dir = self.scratch_base().join(format!(
                    "syseco-fuzz-{}-{scenario_seed:016x}",
                    std::process::id()
                ));
                Some(dir)
            } else {
                None
            };
            if with_cache {
                report.cache_checked += 1;
            }
            let disagreements = check_case(
                &scenario.implementation,
                &scenario.spec,
                scenario_seed,
                self.config.num_samples,
                scratch.as_deref(),
            )?;
            if let Some(dir) = &scratch {
                let _ = std::fs::remove_dir_all(dir);
            }
            if !disagreements.is_empty() {
                report
                    .failures
                    .push(self.confirm_failure(i, &scenario, disagreements));
            }
            report.iterations += 1;
            progress(i + 1, report.failures.len());
        }
        Ok(report)
    }

    /// Shrinks a failing scenario and packages it as a [`FuzzFailure`].
    ///
    /// The shrink predicate re-runs the cheap checks only (oracles and the
    /// uncached pipeline); a failure that only the cache oracle can see is
    /// still recorded, just with the unshrunk pair.
    fn confirm_failure(
        &self,
        iteration: u64,
        scenario: &Scenario,
        disagreements: Vec<Disagreement>,
    ) -> FuzzFailure {
        let seed = scenario.seed;
        let num_samples = self.config.num_samples;
        let outcome = shrink_pair(
            &scenario.implementation,
            &scenario.spec,
            |i, s| {
                check_case(i, s, seed, num_samples, None)
                    .map(|d| !d.is_empty())
                    .unwrap_or(false)
            },
            self.config.shrink_budget,
        );
        let check = disagreements
            .first()
            .map(|d| d.check.clone())
            .unwrap_or_default();
        let detail = disagreements
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" | ");
        FuzzFailure {
            iteration,
            seed,
            disagreements,
            repro: Repro {
                seed,
                iteration,
                check,
                detail,
                implementation: outcome.implementation,
                spec: outcome.spec,
            },
        }
    }

    /// Re-runs the conformance matrix on a parsed repro (the `replay` CLI
    /// verb). The cache oracle is included, using a scratch store.
    ///
    /// # Errors
    ///
    /// Propagates infrastructure [`FuzzError`]s.
    pub fn replay(&self, repro: &Repro) -> Result<Vec<Disagreement>, FuzzError> {
        let dir = self.scratch_base().join(format!(
            "syseco-fuzz-replay-{}-{:016x}",
            std::process::id(),
            repro.seed
        ));
        let result = check_case(
            &repro.implementation,
            &repro.spec,
            repro.seed,
            self.config.num_samples,
            Some(&dir),
        );
        let _ = std::fs::remove_dir_all(&dir);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;

    #[test]
    fn iteration_seeds_are_spread() {
        let seeds: std::collections::HashSet<u64> =
            (0..100).map(|i| iteration_seed(1, i)).collect();
        assert_eq!(seeds.len(), 100);
        assert_ne!(iteration_seed(1, 0), iteration_seed(2, 0));
    }

    #[test]
    fn pipeline_check_is_clean_on_a_simple_pair() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let mut s = Circuit::new("spec");
        let a = s.add_input("a");
        let b = s.add_input("b");
        let g = s.add_gate(GateKind::Or, &[a, b]).unwrap();
        s.add_output("y", g);
        let out = check_pipeline(&c, &s, 7, 32, None);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn short_run_is_deterministic_and_clean() {
        let runner = FuzzRunner::new(FuzzConfig {
            cache_every: 0,
            ..FuzzConfig::default()
        });
        let a = runner.run(5, 3, |_, _| {}).unwrap();
        let b = runner.run(5, 3, |_, _| {}).unwrap();
        assert_eq!(a.iterations, 3);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert_eq!(b.failures.len(), a.failures.len());
    }
}
