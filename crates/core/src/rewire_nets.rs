//! Candidate rewiring nets (paper §4.3).
//!
//! For each rectification point, candidate nets are drawn from **both** the
//! current implementation and the synthesized specification, then
//!
//! 1. *structurally filtered* — a net qualifies when the structural input
//!    dependence of the revised output `f'` contains the net's transitive
//!    fanin support, and
//! 2. *functionally ranked* — by rectification utility
//!    `|{x̂ ∈ 𝔼 : q(x̂) ≠ r(x̂)}| / |𝔼|`: the fraction of error minterms on
//!    which the candidate differs from the pin's current driver. The more
//!    pronounced the difference, the likelier the candidate rectifies `𝔼`.
//!
//! The pin's current driver is always included as the *trivial* candidate
//! (§5.2): it lets `Ξ(c)` express "this point needs no change" when the
//! point count over-approximates.

use std::collections::HashSet;

use eco_netlist::{sim, topo, Circuit, GateKind, NetId, NetlistError, NodeId, Pin};
use eco_timing::TimingReport;

use crate::correspond::Correspondence;

/// A candidate rewiring net for one rectification point.
#[derive(Debug, Clone, PartialEq)]
pub struct RewireCandidate {
    /// The candidate net — in the implementation or the specification,
    /// depending on `from_spec`.
    pub net: NetId,
    /// Whether `net` lives in the specification (`C'`) and must be cloned
    /// into the implementation when chosen.
    pub from_spec: bool,
    /// Rectification utility over the sample set (0.0 for the trivial
    /// candidate).
    pub utility: f64,
    /// Arrival time of the net, when level-driven selection is active.
    pub arrival: f64,
}

/// Per-input-position support sets, as bitmaps over implementation input
/// positions.
#[derive(Debug, Clone)]
pub struct SupportTable {
    words: usize,
    sets: Vec<Vec<u64>>,
}

impl SupportTable {
    /// Computes the input support of every net of `circuit`. For the
    /// specification, `input_translation` maps the circuit's own input
    /// positions to implementation positions (identity for the
    /// implementation itself).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cyclic`] on cyclic circuits (earlier versions
    /// panicked here, turning a malformed caller input into an abort).
    pub fn build(
        circuit: &Circuit,
        input_translation: &[usize],
        num_impl_inputs: usize,
    ) -> Result<Self, NetlistError> {
        let words = num_impl_inputs.div_ceil(64).max(1);
        let mut sets = vec![vec![0u64; words]; circuit.num_nodes()];
        let order = topo::topo_order(circuit)?;
        for id in order {
            let node = circuit.node(id);
            if node.kind() == GateKind::Input {
                let pos = circuit.input_position(id).expect("registered input");
                let impl_pos = input_translation[pos];
                sets[id.index()][impl_pos / 64] |= 1u64 << (impl_pos % 64);
                continue;
            }
            let fanins: Vec<NetId> = node.fanins().to_vec();
            for f in fanins {
                // Manual split borrow: OR fanin set into this node's set.
                let src = sets[f.index()].clone();
                for (w, s) in sets[id.index()].iter_mut().zip(&src) {
                    *w |= s;
                }
            }
        }
        Ok(SupportTable { words, sets })
    }

    /// Whether the support of `a` is contained in the bitmap `within`.
    pub fn contained(&self, a: NetId, within: &[u64]) -> bool {
        self.sets[a.index()]
            .iter()
            .zip(within)
            .all(|(x, y)| x & !y == 0)
    }

    /// The support bitmap of `net`.
    pub fn support(&self, net: NetId) -> &[u64] {
        &self.sets[net.index()]
    }

    /// Number of 64-bit words per bitmap.
    pub fn words(&self) -> usize {
        self.words
    }
}

/// Precomputed per-output context for candidate selection, shared across the
/// rectification points of one output.
#[derive(Debug)]
pub struct RewireNetContext {
    /// Implementation net values on the sample set, one block per 64 samples.
    pub impl_blocks: Vec<Vec<u64>>,
    /// Specification net values on the (translated) sample set.
    pub spec_blocks: Vec<Vec<u64>>,
    /// Number of samples.
    pub num_samples: usize,
    /// Support table of the implementation.
    pub impl_supports: SupportTable,
    /// Support table of the specification (in implementation positions).
    pub spec_supports: SupportTable,
    /// Support bitmap of the revised output `f'`.
    pub fprime_support: Vec<u64>,
    /// Nets of the specification cone of `f'`, candidates for cloning.
    pub spec_cone: Vec<NetId>,
    /// Clone cost (cone size) of each spec-cone net.
    pub spec_cone_sizes: std::collections::HashMap<NetId, usize>,
}

impl RewireNetContext {
    /// Builds the context for one output pair over `samples`
    /// (implementation input order).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from simulation.
    pub fn build(
        implementation: &Circuit,
        spec: &Circuit,
        corr: &Correspondence,
        spec_root: NetId,
        samples: &[Vec<bool>],
    ) -> Result<Self, NetlistError> {
        let impl_blocks = sim::simulate_patterns(implementation, samples)?;
        let spec_samples: Vec<Vec<bool>> =
            samples.iter().map(|s| corr.spec_assignment(s)).collect();
        let spec_blocks = sim::simulate_patterns(spec, &spec_samples)?;

        let impl_translation: Vec<usize> = (0..implementation.num_inputs()).collect();
        let impl_supports = SupportTable::build(
            implementation,
            &impl_translation,
            implementation.num_inputs(),
        )?;
        // Spec input position -> implementation position.
        let mut spec_translation = vec![0usize; spec.num_inputs()];
        for (impl_pos, sp) in corr.spec_input_pos.iter().enumerate() {
            if let Some(sp) = sp {
                spec_translation[*sp] = impl_pos;
            }
        }
        let spec_supports =
            SupportTable::build(spec, &spec_translation, implementation.num_inputs())?;
        let fprime_support = spec_supports.support(spec_root).to_vec();

        let in_cone = topo::tfi(spec, &[spec_root.source()]);
        let spec_cone: Vec<NetId> = in_cone
            .iter()
            .enumerate()
            .filter(|&(i, &inside)| {
                inside && {
                    let k = spec.node(NodeId::from_index(i)).kind();
                    k != GateKind::Input
                }
            })
            .map(|(i, _)| NetId::from_index(i))
            .collect();
        let spec_cone_sizes = spec_cone
            .iter()
            .map(|&w| (w, topo::cone_size(spec, w)))
            .collect();
        Ok(RewireNetContext {
            impl_blocks,
            spec_blocks,
            num_samples: samples.len(),
            impl_supports,
            spec_supports,
            fprime_support,
            spec_cone,
            spec_cone_sizes,
        })
    }

    fn value_bits(&self, blocks: &[Vec<u64>], net: NetId) -> Vec<u64> {
        blocks.iter().map(|b| b[net.index()]).collect()
    }

    /// Fraction of samples on which two packed value vectors differ.
    fn diff_fraction(&self, a: &[u64], b: &[u64]) -> f64 {
        let mut diff = 0u32;
        let mut remaining = self.num_samples;
        for (x, y) in a.iter().zip(b) {
            let take = remaining.min(64);
            let mask = if take == 64 {
                !0u64
            } else {
                (1u64 << take) - 1
            };
            diff += ((x ^ y) & mask).count_ones();
            remaining -= take;
        }
        if self.num_samples == 0 {
            0.0
        } else {
            diff as f64 / self.num_samples as f64
        }
    }
}

/// Selects candidate rewiring nets for `pin`, ranked by utility.
///
/// The first entry is always the trivial candidate (the current driver).
/// Implementation candidates exclude nets in the transitive fanout of the
/// pin's consumer (a rewire to those would create a cycle) and nets whose
/// support escapes `f'`'s structural dependence; specification candidates
/// come from the cone of `f'`. `timing` biases ties toward earlier-arriving
/// nets (the level-driven mode behind Table 3).
///
/// # Errors
///
/// Propagates [`NetlistError`] for invalid pins.
#[allow(clippy::too_many_arguments)]
pub fn candidates_for_pin(
    implementation: &Circuit,
    ctx: &RewireNetContext,
    pin: Pin,
    max_candidates: usize,
    timing: Option<&TimingReport>,
) -> Result<Vec<RewireCandidate>, NetlistError> {
    let driver = implementation.pin_net(pin)?;
    let driver_bits = ctx.value_bits(&ctx.impl_blocks, driver);

    // Nets that would create a cycle: the consumer's transitive fanout.
    let forbidden: Vec<bool> = match pin.node() {
        Some(consumer) => topo::tfo(implementation, &[consumer]),
        None => vec![false; implementation.num_nodes()],
    };

    let mut pool: Vec<RewireCandidate> = Vec::new();
    for id in implementation.iter_live() {
        let net: NetId = id.into();
        if net == driver || forbidden[net.index()] {
            continue;
        }
        if !ctx.impl_supports.contained(net, &ctx.fprime_support) {
            continue;
        }
        let bits = ctx.value_bits(&ctx.impl_blocks, net);
        let utility = ctx.diff_fraction(&bits, &driver_bits);
        if utility == 0.0 {
            continue; // identical on the whole error domain: no help
        }
        pool.push(RewireCandidate {
            net,
            from_spec: false,
            utility,
            arrival: timing.map_or(0.0, |t| t.arrival(net)),
        });
    }
    for &net in &ctx.spec_cone {
        let bits = ctx.value_bits(&ctx.spec_blocks, net);
        let utility = ctx.diff_fraction(&bits, &driver_bits);
        if utility == 0.0 {
            continue;
        }
        pool.push(RewireCandidate {
            net,
            from_spec: true,
            utility,
            // Cloned spec logic starts at the inputs; approximate arrival by
            // its depth, scaled pessimistically.
            arrival: timing.map_or(0.0, |_| 0.0),
        });
    }

    // Rank: utility descending; ties prefer implementation nets (reuse over
    // cloning), then earlier arrival, then stable net order.
    pool.sort_by(|a, b| {
        b.utility
            .partial_cmp(&a.utility)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.from_spec.cmp(&b.from_spec))
            .then_with(|| {
                a.arrival
                    .partial_cmp(&b.arrival)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.net.cmp(&b.net))
    });
    // Keep the top utilities, but guarantee the *cheapest* useful spec
    // candidates a seat: a low-utility single-gate clone (e.g. the new `c`
    // of Figure 1) often yields a far smaller patch than a high-utility
    // whole-cone clone, and the cost-based commit can only pick what the
    // candidate list offers.
    let mut cheap_spec: Vec<RewireCandidate> =
        pool.iter().filter(|c| c.from_spec).cloned().collect();
    cheap_spec.sort_by_key(|c| {
        ctx.spec_cone_sizes
            .get(&c.net)
            .copied()
            .unwrap_or(usize::MAX)
    });
    pool.truncate(max_candidates.saturating_sub(1));
    for extra in cheap_spec.into_iter().take(2) {
        if !pool
            .iter()
            .any(|c| c.net == extra.net && c.from_spec == extra.from_spec)
        {
            pool.push(extra);
        }
    }

    let mut out = Vec::with_capacity(pool.len() + 1);
    out.push(RewireCandidate {
        net: driver,
        from_spec: false,
        utility: 0.0,
        arrival: timing.map_or(0.0, |t| t.arrival(driver)),
    });
    out.extend(pool);
    // Deduplicate by (net, origin), keeping the first (highest-ranked).
    let mut seen: HashSet<(NetId, bool)> = HashSet::new();
    out.retain(|c| seen.insert((c.net, c.from_spec)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;

    /// impl: y = a & b; spec: y = a | b. Error domain: a != b.
    fn setup() -> (Circuit, Circuit, Correspondence, RewireNetContext, NetId) {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sg = s.add_gate(GateKind::Or, &[sa, sb]).unwrap();
        s.add_output("y", sg);
        let corr = Correspondence::build(&c, &s).unwrap();
        let samples = vec![vec![true, false], vec![false, true]];
        let ctx = RewireNetContext::build(&c, &s, &corr, sg, &samples).unwrap();
        (c, s, corr, ctx, g)
    }

    #[test]
    fn trivial_candidate_is_first() {
        let (c, _s, _corr, ctx, g) = setup();
        let pin = Pin::gate(g.source(), 0);
        let cands = candidates_for_pin(&c, &ctx, pin, 8, None).unwrap();
        let driver = c.pin_net(pin).unwrap();
        assert_eq!(cands[0].net, driver);
        assert!(!cands[0].from_spec);
        assert_eq!(cands[0].utility, 0.0);
    }

    #[test]
    fn spec_or_net_ranks_high_for_and_pin() {
        // Rewiring one AND pin cannot alone fix and→or, but the spec's OR
        // net must appear as a high-utility candidate for the output pin.
        let (c, s, _corr, ctx, _g) = setup();
        let pin = Pin::output(0);
        let cands = candidates_for_pin(&c, &ctx, pin, 8, None).unwrap();
        let spec_or = s.outputs()[0].net();
        let found = cands
            .iter()
            .find(|cand| cand.from_spec && cand.net == spec_or)
            .expect("spec OR net is a candidate");
        // It differs from the driver on the whole error domain.
        assert_eq!(found.utility, 1.0);
    }

    #[test]
    fn cycle_forbidden_nets_excluded() {
        // Candidates for a pin on g must not include g itself or anything
        // downstream of g.
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let h = c.add_gate(GateKind::Not, &[g]).unwrap();
        c.add_output("y", h);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sg = s.add_gate(GateKind::Nand, &[sa, sb]).unwrap();
        s.add_output("y", sg);
        let corr = Correspondence::build(&c, &s).unwrap();
        let samples = vec![vec![true, true], vec![true, false]];
        let ctx = RewireNetContext::build(&c, &s, &corr, sg, &samples).unwrap();
        let pin = Pin::gate(g.source(), 0);
        let cands = candidates_for_pin(&c, &ctx, pin, 16, None).unwrap();
        for cand in &cands {
            if !cand.from_spec {
                assert_ne!(cand.net, g, "own output is a cycle");
                assert_ne!(cand.net, h, "downstream net is a cycle");
            }
        }
    }

    #[test]
    fn support_filter_blocks_out_of_cone_inputs() {
        // An impl net depending on input `extra` (outside f' support) is
        // not a candidate.
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let extra = c.add_input("extra");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let stray = c.add_gate(GateKind::Or, &[a, extra]).unwrap();
        c.add_output("y", g);
        c.add_output("stray", stray);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let se = s.add_input("extra");
        let sg = s.add_gate(GateKind::Or, &[sa, sb]).unwrap();
        let st = s.add_gate(GateKind::Or, &[sa, se]).unwrap();
        s.add_output("y", sg);
        s.add_output("stray", st);
        let corr = Correspondence::build(&c, &s).unwrap();
        let samples = vec![
            vec![true, false, true],
            vec![false, true, true],
            vec![false, false, true],
        ];
        let ctx = RewireNetContext::build(&c, &s, &corr, sg, &samples).unwrap();
        let cands = candidates_for_pin(&c, &ctx, Pin::output(0), 16, None).unwrap();
        for cand in &cands {
            if !cand.from_spec {
                assert_ne!(cand.net, stray, "stray depends on `extra`, outside f'");
            }
        }
    }

    #[test]
    fn support_table_containment() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, &[g1, d]).unwrap();
        c.add_output("y", g2);
        let tr: Vec<usize> = (0..3).collect();
        let t = SupportTable::build(&c, &tr, 3).unwrap();
        assert!(t.contained(g1, t.support(g2)));
        assert!(!t.contained(g2, t.support(g1)));
        assert!(t.contained(a, t.support(g1)));
    }

    #[test]
    fn candidate_cap_respected() {
        let (c, _s, _corr, ctx, _g) = setup();
        let cands = candidates_for_pin(&c, &ctx, Pin::output(0), 3, None).unwrap();
        assert!(cands.len() <= 3);
    }
}
