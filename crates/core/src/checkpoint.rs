//! Crash-safe per-output checkpointing (resume after SIGKILL).
//!
//! A long rectification run owes the operator restartability: if the
//! process is killed — OOM, preemption, a pulled plug — rerunning with the
//! same inputs and `--checkpoint-dir` must *resume*, not restart. This
//! module persists each per-output search verdict the moment the search
//! finishes, reusing the `eco-cache` append-only CRC-checked segment
//! machinery (atomic tempfile-rename commits, corruption-as-miss), so the
//! checkpoint directory is valid after a kill at **any** instant: a record
//! is either durably whole or invisible.
//!
//! # Safety argument
//!
//! * Records are keyed by the structural run signature
//!   (implementation × specification × semantic options, DESIGN.md §11)
//!   plus the output label — a checkpoint from different inputs can never
//!   be resumed by accident; it just misses.
//! * Only **clean** verdicts are persisted: an equivalent output, a fully
//!   validated proposal, or a degradation-free fallback. A search cut
//!   short by a deadline, fault, or panic is *not* checkpointed — the
//!   resumed run searches it again properly.
//! * Resume substitutes stored verdicts for their searches but changes
//!   nothing downstream: the merge phase re-checks and the engine's
//!   always-re-verify policy re-classifies, so a resumed run's final patch
//!   is byte-identical to an uninterrupted run's (enforced by the
//!   crash-resume proptests and the chaos harness).
//!
//! Checkpoint I/O is best-effort with bounded retry: a failed write costs
//! the resumability of that one output, never the run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use eco_cache::{circuit_sig, hash_str, Sig128, Store, Vfs};
use eco_netlist::Circuit;

use crate::budget::Budget;
use crate::memo::{self, options_fingerprint, Reader};
use crate::options::EcoOptions;
use crate::validate::CandidateRewire;

/// Record kind under which checkpoint slots are stored (disjoint from the
/// cache's `KIND_RUN`/`KIND_OUTPUT` namespaces even if the two stores ever
/// share a directory).
const KIND_CHECKPOINT: u8 = 3;
/// Leading payload byte; bump on any encoding change so old checkpoints
/// decode as misses instead of garbage.
const CHECKPOINT_VERSION: u8 = 1;
/// Folded into the run key; bump when resume *semantics* change.
const CHECKPOINT_KEY_VERSION: u64 = 1;

/// A clean per-output outcome, as persisted and resumed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CheckpointVerdict {
    /// The output pair proved equivalent.
    Equivalent,
    /// A fully validated rewiring proposal (raw net indices — the resumed
    /// run rectifies byte-identical circuits).
    Proposal(Vec<CandidateRewire>),
    /// The search exhausted its options cleanly (no degradation) and chose
    /// the guaranteed output-rewire fallback.
    CleanFallback,
}

/// One resumed slot: the verdict plus the refinement counterexamples the
/// original search accumulated (carried forward so the cache write-back of
/// a resumed run matches the uninterrupted run's).
#[derive(Debug, Clone)]
pub(crate) struct CheckpointRecord {
    pub verdict: CheckpointVerdict,
    pub refined: Vec<Vec<bool>>,
}

/// A checkpoint store scoped to one `rectify` call.
///
/// Shared by reference across search workers: `record` is called from the
/// worker that finishes a search, so the store sits behind a
/// poison-recovering [`Mutex`] (a panicking worker must never wedge
/// checkpointing for the others).
pub(crate) struct CheckpointSession {
    store: Mutex<Store>,
    run_key: Sig128,
    writes: AtomicU64,
}

impl CheckpointSession {
    /// Opens the checkpoint directory named by
    /// `options.checkpoint_dir`, or `None` when checkpointing is off or
    /// the directory cannot be opened (degrades to a checkpoint-free run).
    ///
    /// The `budget` supplies the I/O seam: its fault plan's checkpoint VFS
    /// and retry schedule under test, real I/O otherwise.
    pub fn open(
        options: &EcoOptions,
        implementation: &Circuit,
        spec: &Circuit,
        budget: &Budget,
    ) -> Option<Self> {
        let dir = options.checkpoint_dir.as_deref()?;
        let vfs: Arc<dyn Vfs> = budget
            .checkpoint_vfs()
            .unwrap_or_else(|| Arc::new(eco_cache::RealVfs));
        let store = Store::open_with(dir, false, vfs, budget.io_retry()).ok()?;
        let impl_sig = circuit_sig(implementation).ok()?;
        let spec_sig = circuit_sig(spec).ok()?;
        let run_key = Sig128::fold(&[
            impl_sig,
            spec_sig,
            options_fingerprint(options),
            eco_cache::fingerprint_words(&[CHECKPOINT_KEY_VERSION]),
        ]);
        Some(CheckpointSession {
            store: Mutex::new(store),
            run_key,
            writes: AtomicU64::new(0),
        })
    }

    /// The slot key of one output, stable across reruns of the same
    /// inputs.
    pub fn slot_key(&self, output: &str) -> Sig128 {
        self.run_key.mix(hash_str(output))
    }

    /// Loads the clean verdict checkpointed under `key`, if any.
    pub fn load(&self, key: Sig128) -> Option<CheckpointRecord> {
        let store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        store.get(key, KIND_CHECKPOINT).and_then(decode_record)
    }

    /// Persists one clean verdict and commits it durably, immediately:
    /// after this returns `true`, a kill at any later instant leaves the
    /// record resumable. Failures (after bounded retries) are swallowed —
    /// a lost checkpoint costs resume coverage, not correctness.
    pub fn record(&self, key: Sig128, verdict: &CheckpointVerdict, refined: &[Vec<bool>]) -> bool {
        let payload = encode_record(verdict, refined);
        let mut store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        if store.get(key, KIND_CHECKPOINT) == Some(payload.as_slice()) {
            return true;
        }
        store.put(key, KIND_CHECKPOINT, payload);
        let committed = store.commit().is_ok();
        if committed {
            self.writes.fetch_add(1, Ordering::Relaxed);
        }
        committed
    }

    /// Records durably committed by this session.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Damaged segments skipped when the store was opened.
    pub fn corrupt_segments(&self) -> u64 {
        let store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        store.corrupt_segments()
    }

    /// Operations that failed after all retries, plus retries performed.
    pub fn io_counters(&self) -> (u64, u64) {
        let store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        (store.io_errors(), store.retries())
    }
}

fn encode_record(verdict: &CheckpointVerdict, refined: &[Vec<bool>]) -> Vec<u8> {
    let mut buf = vec![CHECKPOINT_VERSION];
    match verdict {
        CheckpointVerdict::Equivalent => buf.push(0),
        CheckpointVerdict::Proposal(rewires) => {
            buf.push(1);
            memo::put_u32(&mut buf, rewires.len() as u32);
            for r in rewires {
                // Raw-index encoding (walk: None) is infallible.
                let _ = memo::encode_rewire(&mut buf, r, None);
            }
        }
        CheckpointVerdict::CleanFallback => buf.push(2),
    }
    memo::put_u32(&mut buf, refined.len() as u32);
    for m in refined {
        memo::put_u32(&mut buf, m.len() as u32);
        buf.extend(m.iter().map(|&b| u8::from(b)));
    }
    buf
}

fn decode_record(payload: &[u8]) -> Option<CheckpointRecord> {
    let mut r = Reader::new(payload);
    if r.u8()? != CHECKPOINT_VERSION {
        return None;
    }
    let verdict = match r.u8()? {
        0 => CheckpointVerdict::Equivalent,
        1 => {
            let len = r.len()?;
            let mut rewires = Vec::with_capacity(len as usize);
            for _ in 0..len {
                rewires.push(memo::decode_rewire(&mut r, None)?);
            }
            CheckpointVerdict::Proposal(rewires)
        }
        2 => CheckpointVerdict::CleanFallback,
        _ => return None,
    };
    let num = r.len()?;
    let mut refined = Vec::with_capacity(num as usize);
    for _ in 0..num {
        let len = r.len()?;
        let mut m = Vec::with_capacity(len as usize);
        for _ in 0..len {
            m.push(match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            });
        }
        refined.push(m);
    }
    r.done().then_some(CheckpointRecord { verdict, refined })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewire_nets::RewireCandidate;
    use eco_netlist::{GateKind, NetId, Pin};

    fn tiny() -> Circuit {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        c
    }

    fn ck_options(tag: &str) -> EcoOptions {
        EcoOptions {
            checkpoint_dir: Some(
                std::env::temp_dir().join(format!("eco-ckpt-test-{tag}-{}", std::process::id())),
            ),
            ..EcoOptions::default()
        }
    }

    fn proposal() -> CheckpointVerdict {
        CheckpointVerdict::Proposal(vec![CandidateRewire {
            pin: Pin::output(0),
            candidate: RewireCandidate {
                net: NetId::from_index(1),
                from_spec: true,
                utility: 1.0,
                arrival: 0.0,
            },
        }])
    }

    #[test]
    fn record_roundtrips_and_rejects_damage() {
        for verdict in [
            CheckpointVerdict::Equivalent,
            proposal(),
            CheckpointVerdict::CleanFallback,
        ] {
            let refined = vec![vec![true, false], vec![false, true]];
            let payload = encode_record(&verdict, &refined);
            let decoded = decode_record(&payload).unwrap();
            assert_eq!(decoded.verdict, verdict);
            assert_eq!(decoded.refined, refined);
            for cut in 0..payload.len() {
                assert!(decode_record(&payload[..cut]).is_none(), "cut at {cut}");
            }
            let mut wrong = payload.clone();
            wrong[0] = CHECKPOINT_VERSION + 1;
            assert!(decode_record(&wrong).is_none());
        }
    }

    #[test]
    fn session_persists_across_reopen_and_keys_by_inputs() {
        let options = ck_options("reopen");
        let dir = options.checkpoint_dir.clone().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let c = tiny();
        let budget = Budget::unlimited();
        {
            let s = CheckpointSession::open(&options, &c, &c, &budget).unwrap();
            let key = s.slot_key("y");
            assert!(s.load(key).is_none());
            assert!(s.record(key, &proposal(), &[vec![true, true]]));
        }
        let s = CheckpointSession::open(&options, &c, &c, &budget).unwrap();
        let rec = s.load(s.slot_key("y")).unwrap();
        assert_eq!(rec.verdict, proposal());
        assert_eq!(rec.refined, vec![vec![true, true]]);
        assert!(s.load(s.slot_key("z")).is_none(), "keys are per output");

        // A different implementation misses: the run key covers the inputs.
        let mut other = tiny();
        other.add_output("y2", NetId::from_index(0));
        let s2 = CheckpointSession::open(&options, &other, &c, &budget).unwrap();
        assert!(s2.load(s2.slot_key("y")).is_none());
        assert_eq!(s.corrupt_segments(), 0);
        assert_eq!(s.io_counters(), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_none_without_checkpoint_dir() {
        let c = tiny();
        assert!(
            CheckpointSession::open(&EcoOptions::default(), &c, &c, &Budget::unlimited()).is_none()
        );
    }
}
