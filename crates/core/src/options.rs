//! Tuning knobs of the rectification engine.

/// Where sampling-domain assignments come from (paper §5.1; ablation B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplePolicy {
    /// All samples drawn from the error domain `𝔼` (the paper's choice).
    ErrorDomain,
    /// Uniformly random assignments (plus the seed counterexample).
    Random,
    /// Half error-domain, half random: error samples drive correction,
    /// random samples add preservation constraints that cut false
    /// positives (this reproduction's extension; see EXPERIMENTS.md).
    Mixed,
}

/// Options controlling the rewire-based rectification flow.
///
/// The defaults correspond to the configuration used by the benchmark
/// harness; individual studies (the ablation benches) override single
/// fields.
#[derive(Debug, Clone)]
pub struct EcoOptions {
    /// Target number of sampled assignments in the symbolic sampling domain
    /// (paper §5.1). Rounded up to a power of two internally; `⌈log2 N⌉`
    /// BDD variables encode the domain.
    pub num_samples: usize,
    /// Sampling-domain policy (§5.1; ablation B compares the variants).
    pub sample_policy: SamplePolicy,
    /// Maximum number of rectification points `m` tried per output (§4.2).
    pub max_points: usize,
    /// Cap `M` on candidate sink pins considered per output.
    pub max_candidate_pins: usize,
    /// Maximum prime cubes of `H(t)` expanded into explicit point-sets.
    pub max_point_sets: usize,
    /// Maximum concrete point-sets decoded from one prime cube.
    pub max_decodes_per_prime: usize,
    /// Maximum candidate rewiring nets per rectification point (§4.3),
    /// including the trivial (current-driver) candidate.
    pub max_rewire_candidates: usize,
    /// Maximum rewiring choices decoded from `Ξ(c)` per point-set (§4.4).
    pub max_choices: usize,
    /// Conflict budget per SAT validation query (§5.1's resource-constrained
    /// solver).
    pub validation_budget: u64,
    /// Maximum counterexample-refinement rounds per output before falling
    /// back to the next candidate.
    pub max_refinements: usize,
    /// Hard cap on SAT validations per output per domain attempt; when
    /// exhausted, the best validated option so far is committed (or the
    /// search falls back).
    pub max_validations_per_output: usize,
    /// Stop escalating to more rectification points once a validated option
    /// with at most this clone cost (in spec gates) exists.
    pub good_enough_cost: usize,
    /// Use arrival times to prefer timing-friendly rewiring nets — the
    /// level-driven selection behind Table 3.
    pub level_driven: bool,
    /// Seed for all randomized steps (simulation patterns, sampling).
    pub seed: u64,
    /// Node budget of the per-output BDD manager.
    pub bdd_node_limit: usize,
    /// Wall-clock budget for the whole rectification run. When it expires,
    /// outputs still unrectified degrade to the output-rewire fallback and
    /// the cut is recorded in [`RectifyStats::degradations`].
    ///
    /// [`RectifyStats::degradations`]: crate::RectifyStats::degradations
    pub timeout: Option<std::time::Duration>,
}

impl Default for EcoOptions {
    fn default() -> Self {
        EcoOptions {
            num_samples: 64,
            sample_policy: SamplePolicy::ErrorDomain,
            max_points: 3,
            max_candidate_pins: 48,
            max_point_sets: 8,
            max_decodes_per_prime: 4,
            max_rewire_candidates: 8,
            max_choices: 6,
            validation_budget: 100_000,
            max_refinements: 6,
            max_validations_per_output: 24,
            good_enough_cost: 4,
            level_driven: false,
            seed: 0xEC0,
            bdd_node_limit: 2_000_000,
            timeout: None,
        }
    }
}

impl EcoOptions {
    /// Default options with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        EcoOptions {
            seed,
            ..Self::default()
        }
    }

    /// The number of `z` variables encoding the sampling domain.
    pub fn num_z_vars(&self) -> u32 {
        let n = self.num_samples.max(2);
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn z_vars_round_up() {
        let mut o = EcoOptions::default();
        o.num_samples = 64;
        assert_eq!(o.num_z_vars(), 6);
        o.num_samples = 65;
        assert_eq!(o.num_z_vars(), 7);
        o.num_samples = 2;
        assert_eq!(o.num_z_vars(), 1);
        o.num_samples = 1;
        assert_eq!(o.num_z_vars(), 1);
    }

    #[test]
    fn defaults_are_sane() {
        let o = EcoOptions::default();
        assert!(o.num_samples >= 16);
        assert!(o.max_points >= 1);
        assert!(o.max_rewire_candidates >= 2);
    }
}
