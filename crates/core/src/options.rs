//! Tuning knobs of the rectification engine.

use eco_cache::CacheMode;

/// Where sampling-domain assignments come from (paper §5.1; ablation B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SamplePolicy {
    /// All samples drawn from the error domain `𝔼` (the paper's choice).
    ErrorDomain,
    /// Uniformly random assignments (plus the seed counterexample).
    Random,
    /// Half error-domain, half random: error samples drive correction,
    /// random samples add preservation constraints that cut false
    /// positives (this reproduction's extension; see EXPERIMENTS.md).
    Mixed,
}

/// Options controlling the rewire-based rectification flow.
///
/// Construct with [`EcoOptions::builder`] (the struct is `#[non_exhaustive]`,
/// so literal construction is reserved to this crate):
///
/// ```
/// use syseco::EcoOptions;
///
/// let options = EcoOptions::builder()
///     .num_samples(64)
///     .jobs(4)
///     .seed(7)
///     .build();
/// assert_eq!(options.num_samples, 64);
/// ```
///
/// The defaults correspond to the configuration used by the benchmark
/// harness; individual studies (the ablation benches) override single
/// fields.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EcoOptions {
    /// Target number of sampled assignments in the symbolic sampling domain
    /// (paper §5.1). Rounded up to a power of two internally; `⌈log2 N⌉`
    /// BDD variables encode the domain.
    pub num_samples: usize,
    /// Sampling-domain policy (§5.1; ablation B compares the variants).
    pub sample_policy: SamplePolicy,
    /// Maximum number of rectification points `m` tried per output (§4.2).
    pub max_points: usize,
    /// Cap `M` on candidate sink pins considered per output.
    pub max_candidate_pins: usize,
    /// Maximum prime cubes of `H(t)` expanded into explicit point-sets.
    pub max_point_sets: usize,
    /// Maximum concrete point-sets decoded from one prime cube.
    pub max_decodes_per_prime: usize,
    /// Maximum candidate rewiring nets per rectification point (§4.3),
    /// including the trivial (current-driver) candidate.
    pub max_rewire_candidates: usize,
    /// Maximum rewiring choices decoded from `Ξ(c)` per point-set (§4.4).
    pub max_choices: usize,
    /// Conflict budget per SAT validation query (§5.1's resource-constrained
    /// solver).
    pub validation_budget: u64,
    /// Maximum counterexample-refinement rounds per output before falling
    /// back to the next candidate.
    pub max_refinements: usize,
    /// Hard cap on SAT validations per output per domain attempt; when
    /// exhausted, the best validated option so far is committed (or the
    /// search falls back).
    pub max_validations_per_output: usize,
    /// Stop escalating to more rectification points once a validated option
    /// with at most this clone cost (in spec gates) exists.
    pub good_enough_cost: usize,
    /// Use arrival times to prefer timing-friendly rewiring nets — the
    /// level-driven selection behind Table 3.
    pub level_driven: bool,
    /// Seed for all randomized steps (simulation patterns, sampling). Each
    /// per-output search derives its own stream from this seed and the
    /// output index, so results are independent of worker count.
    pub seed: u64,
    /// Node budget of the per-output BDD manager.
    pub bdd_node_limit: usize,
    /// Live-node threshold that triggers a BDD mark-and-sweep pass at the
    /// next point-set boundary of a search (`None` disables automatic
    /// collection). Adapts upward after each pass so a genuinely large
    /// working set is not thrashed.
    pub bdd_gc_threshold: Option<usize>,
    /// Live-node threshold that triggers a sifting reorder pass at the
    /// next point-set boundary (`None` disables automatic reordering).
    /// Also adapts upward after each pass.
    pub bdd_reorder_threshold: Option<usize>,
    /// Wall-clock budget for the whole rectification run. When it expires,
    /// outputs still unrectified degrade to the output-rewire fallback and
    /// the cut is recorded in [`RectifyStats::degradations`].
    ///
    /// [`RectifyStats::degradations`]: crate::RectifyStats::degradations
    pub timeout: Option<std::time::Duration>,
    /// Worker threads for the per-output searches. `0` (the default) means
    /// one worker per unit of [`std::thread::available_parallelism`]. With
    /// `1`, searches run inline on the calling thread. Patches are
    /// bit-identical for every value of `jobs` on un-deadlined runs; see
    /// DESIGN.md "Parallel execution model".
    pub jobs: usize,
    /// Directory of the persistent incremental-ECO cache. `None` (the
    /// default) disables caching entirely: no files are read or created.
    /// With a directory set, runs reuse memoized patches, warm-start
    /// sampling domains from recorded counterexamples, and (in read-write
    /// mode) record their own results — every reuse is re-verified by SAT
    /// before it affects the patch, so a stale or corrupt cache can only
    /// cost performance, never correctness (DESIGN.md §11).
    pub cache_dir: Option<std::path::PathBuf>,
    /// How the cache directory is used (ignored while `cache_dir` is
    /// `None`): read-write (the default), read-only, or off.
    pub cache_mode: CacheMode,
    /// Directory for crash-safe checkpointing. `None` (the default)
    /// disables it. With a directory set, each per-output search result is
    /// durably persisted the moment it completes, so a killed run rerun
    /// with the same inputs *resumes*: completed outputs skip their
    /// searches, everything is re-verified by the engine's
    /// always-re-verify policy, and the final patch is byte-identical to
    /// an uninterrupted run's (DESIGN.md §13).
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl Default for EcoOptions {
    fn default() -> Self {
        EcoOptions {
            num_samples: 64,
            sample_policy: SamplePolicy::ErrorDomain,
            max_points: 3,
            max_candidate_pins: 48,
            max_point_sets: 8,
            max_decodes_per_prime: 4,
            max_rewire_candidates: 8,
            max_choices: 6,
            validation_budget: 100_000,
            max_refinements: 6,
            max_validations_per_output: 24,
            good_enough_cost: 4,
            level_driven: false,
            seed: 0xEC0,
            bdd_node_limit: 2_000_000,
            bdd_gc_threshold: Some(1 << 16),
            bdd_reorder_threshold: Some(1 << 17),
            timeout: None,
            jobs: 0,
            cache_dir: None,
            cache_mode: CacheMode::ReadWrite,
            checkpoint_dir: None,
        }
    }
}

impl EcoOptions {
    /// Starts a builder over the default configuration.
    pub fn builder() -> EcoOptionsBuilder {
        EcoOptionsBuilder::default()
    }

    /// Default options with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        EcoOptions {
            seed,
            ..Self::default()
        }
    }

    /// The number of `z` variables encoding the sampling domain.
    pub fn num_z_vars(&self) -> u32 {
        let n = self.num_samples.max(2);
        usize::BITS - (n - 1).leading_zeros()
    }

    /// Resolves [`EcoOptions::jobs`] to a concrete worker count: `0` maps to
    /// the host's available parallelism (at least 1).
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// Builder for [`EcoOptions`].
///
/// Each setter overrides one field of the default configuration; `build`
/// returns the finished options. The builder is `#[must_use]`: dropping it
/// without calling [`EcoOptionsBuilder::build`] configures nothing.
#[derive(Debug, Clone, Default)]
#[must_use = "call `.build()` to obtain the configured EcoOptions"]
pub struct EcoOptionsBuilder {
    options: EcoOptions,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.options.$name = value;
                self
            }
        )*
    };
}

impl EcoOptionsBuilder {
    builder_setters! {
        /// Sets [`EcoOptions::num_samples`].
        num_samples: usize,
        /// Sets [`EcoOptions::sample_policy`].
        sample_policy: SamplePolicy,
        /// Sets [`EcoOptions::max_points`].
        max_points: usize,
        /// Sets [`EcoOptions::max_candidate_pins`].
        max_candidate_pins: usize,
        /// Sets [`EcoOptions::max_point_sets`].
        max_point_sets: usize,
        /// Sets [`EcoOptions::max_decodes_per_prime`].
        max_decodes_per_prime: usize,
        /// Sets [`EcoOptions::max_rewire_candidates`].
        max_rewire_candidates: usize,
        /// Sets [`EcoOptions::max_choices`].
        max_choices: usize,
        /// Sets [`EcoOptions::validation_budget`].
        validation_budget: u64,
        /// Sets [`EcoOptions::max_refinements`].
        max_refinements: usize,
        /// Sets [`EcoOptions::max_validations_per_output`].
        max_validations_per_output: usize,
        /// Sets [`EcoOptions::good_enough_cost`].
        good_enough_cost: usize,
        /// Sets [`EcoOptions::level_driven`].
        level_driven: bool,
        /// Sets [`EcoOptions::seed`].
        seed: u64,
        /// Sets [`EcoOptions::bdd_node_limit`].
        bdd_node_limit: usize,
        /// Sets [`EcoOptions::bdd_gc_threshold`].
        bdd_gc_threshold: Option<usize>,
        /// Sets [`EcoOptions::bdd_reorder_threshold`].
        bdd_reorder_threshold: Option<usize>,
        /// Sets [`EcoOptions::jobs`] (`0` = available parallelism).
        jobs: usize,
        /// Sets [`EcoOptions::cache_mode`].
        cache_mode: CacheMode,
    }

    /// Sets [`EcoOptions::cache_dir`], enabling the persistent cache.
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.options.cache_dir = Some(dir.into());
        self
    }

    /// Clears [`EcoOptions::cache_dir`] (the default: no caching).
    pub fn no_cache_dir(mut self) -> Self {
        self.options.cache_dir = None;
        self
    }

    /// Sets [`EcoOptions::checkpoint_dir`], enabling crash-safe
    /// checkpoint/resume.
    pub fn checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.options.checkpoint_dir = Some(dir.into());
        self
    }

    /// Clears [`EcoOptions::checkpoint_dir`] (the default: no
    /// checkpointing).
    pub fn no_checkpoint_dir(mut self) -> Self {
        self.options.checkpoint_dir = None;
        self
    }

    /// Sets [`EcoOptions::timeout`].
    pub fn timeout(mut self, timeout: std::time::Duration) -> Self {
        self.options.timeout = Some(timeout);
        self
    }

    /// Clears [`EcoOptions::timeout`] (the default).
    pub fn no_timeout(mut self) -> Self {
        self.options.timeout = None;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> EcoOptions {
        self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn z_vars_round_up() {
        let mut o = EcoOptions::default();
        o.num_samples = 64;
        assert_eq!(o.num_z_vars(), 6);
        o.num_samples = 65;
        assert_eq!(o.num_z_vars(), 7);
        o.num_samples = 2;
        assert_eq!(o.num_z_vars(), 1);
        o.num_samples = 1;
        assert_eq!(o.num_z_vars(), 1);
    }

    #[test]
    fn defaults_are_sane() {
        let o = EcoOptions::default();
        assert!(o.num_samples >= 16);
        assert!(o.max_points >= 1);
        assert!(o.max_rewire_candidates >= 2);
        assert_eq!(o.jobs, 0);
        assert!(o.effective_jobs() >= 1);
        assert_eq!(o.cache_dir, None, "caching is opt-in");
        assert_eq!(o.cache_mode, CacheMode::ReadWrite);
    }

    #[test]
    fn builder_sets_every_field() {
        let o = EcoOptions::builder()
            .num_samples(32)
            .sample_policy(SamplePolicy::Mixed)
            .max_points(2)
            .max_candidate_pins(16)
            .max_point_sets(4)
            .max_decodes_per_prime(2)
            .max_rewire_candidates(5)
            .max_choices(3)
            .validation_budget(1_000)
            .max_refinements(2)
            .max_validations_per_output(9)
            .good_enough_cost(1)
            .level_driven(true)
            .seed(99)
            .bdd_node_limit(10_000)
            .jobs(3)
            .timeout(std::time::Duration::from_secs(5))
            .cache_dir("/tmp/eco-cache")
            .cache_mode(CacheMode::ReadOnly)
            .checkpoint_dir("/tmp/eco-ckpt")
            .build();
        assert_eq!(o.num_samples, 32);
        assert_eq!(o.sample_policy, SamplePolicy::Mixed);
        assert_eq!(o.max_points, 2);
        assert_eq!(o.max_candidate_pins, 16);
        assert_eq!(o.max_point_sets, 4);
        assert_eq!(o.max_decodes_per_prime, 2);
        assert_eq!(o.max_rewire_candidates, 5);
        assert_eq!(o.max_choices, 3);
        assert_eq!(o.validation_budget, 1_000);
        assert_eq!(o.max_refinements, 2);
        assert_eq!(o.max_validations_per_output, 9);
        assert_eq!(o.good_enough_cost, 1);
        assert!(o.level_driven);
        assert_eq!(o.seed, 99);
        assert_eq!(o.bdd_node_limit, 10_000);
        assert_eq!(o.jobs, 3);
        assert_eq!(o.effective_jobs(), 3);
        assert_eq!(o.timeout, Some(std::time::Duration::from_secs(5)));
        assert_eq!(
            o.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/eco-cache"))
        );
        assert_eq!(o.cache_mode, CacheMode::ReadOnly);
        assert_eq!(
            o.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/eco-ckpt"))
        );
        assert_eq!(
            EcoOptions::builder()
                .cache_dir("x")
                .no_cache_dir()
                .build()
                .cache_dir,
            None
        );
        assert_eq!(
            EcoOptions::builder()
                .checkpoint_dir("x")
                .no_checkpoint_dir()
                .build()
                .checkpoint_dir,
            None
        );
        assert_eq!(
            EcoOptions::builder()
                .timeout(std::time::Duration::ZERO)
                .no_timeout()
                .build()
                .timeout,
            None
        );
    }
}
