//! Resource governance for rectification runs (the §5.1 resource
//! constraints, generalized).
//!
//! The paper's engine is explicitly resource-constrained: SAT validation is
//! budgeted, candidate enumeration is capped, and the output-rewire fallback
//! guarantees completeness whenever the search runs out of anything. This
//! module carries those constraints as one value — a [`Budget`] combining a
//! wall-clock deadline with a cooperative [`CancelToken`] — threaded through
//! the engine, the per-output search, the SAT solver, and the BDD manager.
//!
//! Exhaustion never aborts a run. The engine degrades along the paper's
//! completeness ladder (best-validated option so far, else the always
//! applicable output-rewire fallback) and records each cut corner as a
//! [`Degradation`] in the run statistics.
//!
//! Under `cfg(test)` or the `fault-injection` feature, a
//! [`FaultPlan`](crate::fault) deterministically forces BDD node-limit
//! hits, SAT budget exhaustion, synthetic panics, span-boundary
//! cancellations/aborts, and cache/checkpoint I/O faults at chosen call
//! counts so every degradation and recovery path is testable (see
//! [`crate::fault`]).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eco_bdd::BddManager;
use eco_cache::{RetryPolicy, Vfs};
use eco_sat::Solver;

use crate::fault::SpanPoint;
#[cfg(any(test, feature = "fault-injection"))]
use crate::fault::{FaultPlan, FaultPolicy, FaultState};

/// Cooperative cancellation token.
///
/// Clone the token, hand one copy to the rectification run (via
/// [`Budget::with_cancel`]) and keep the other; calling [`cancel`] from any
/// thread makes the run wind down at the next check point, falling back to
/// the guaranteed output rewires for whatever is still unrectified.
///
/// [`cancel`]: CancelToken::cancel
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token observing an externally owned flag, for bridging foreign
    /// cancellation sources into a [`Budget`]. The daemon layer
    /// ([`crate::serve`]) uses this to propagate a per-job cancel frame —
    /// whoever stores `true` into the flag cancels the run.
    pub fn from_shared(flag: Arc<AtomicBool>) -> Self {
        CancelToken { flag }
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw flag, for handing to solvers that poll it.
    pub(crate) fn shared_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// Whether a [`Budget`] still permits work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStatus {
    /// Work may continue.
    Ok,
    /// The wall-clock deadline has passed.
    DeadlineExceeded,
    /// The cancel token was triggered.
    Cancelled,
}

/// Wall-clock and cancellation governance for one rectification run.
///
/// A `Budget` is passed by reference into [`Syseco::rectify_with_budget`]
/// (and down through every resource-consuming layer). It is cheap to query;
/// the solvers poll it only periodically.
///
/// [`Syseco::rectify_with_budget`]: crate::Syseco::rectify_with_budget
#[derive(Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    #[cfg(any(test, feature = "fault-injection"))]
    plan: FaultPlan,
    #[cfg(any(test, feature = "fault-injection"))]
    fault_state: FaultState,
}

impl Budget {
    /// A budget with no deadline and no cancellation: the engine runs to
    /// completion under its per-call conflict/node caps only.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget expiring `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Budget {
            deadline: Instant::now().checked_add(timeout),
            ..Self::default()
        }
    }

    /// A budget expiring at an absolute instant.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Attaches a cancellation token (builder style).
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Attaches a deterministic fault policy (builder style). Only available
    /// in test builds or with the `fault-injection` feature.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn with_faults(mut self, faults: FaultPolicy) -> Self {
        self.plan.policy = faults;
        self
    }

    /// Attaches a complete [`FaultPlan`] (builder style), replacing any
    /// policy set by [`Budget::with_faults`]. Only available in test builds
    /// or with the `fault-injection` feature.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left before the deadline; `None` when unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Current status: deadline and cancellation checked in that order of
    /// precedence (a cancelled run past its deadline reports the deadline).
    pub fn status(&self) -> BudgetStatus {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return BudgetStatus::DeadlineExceeded;
            }
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return BudgetStatus::Cancelled;
            }
        }
        #[cfg(any(test, feature = "fault-injection"))]
        if self.fault_state.cancelled.load(Ordering::Relaxed) {
            return BudgetStatus::Cancelled;
        }
        BudgetStatus::Ok
    }

    /// Whether no further search work should start.
    pub fn is_exhausted(&self) -> bool {
        self.status() != BudgetStatus::Ok
    }

    /// The degradation reason corresponding to the current status, if the
    /// budget is exhausted.
    pub(crate) fn degrade_reason(&self) -> Option<DegradeReason> {
        match self.status() {
            BudgetStatus::Ok => None,
            BudgetStatus::DeadlineExceeded => Some(DegradeReason::DeadlineExceeded),
            BudgetStatus::Cancelled => Some(DegradeReason::Cancelled),
        }
    }

    /// Arms a SAT solver with this budget's deadline and cancel flag so its
    /// solve loop stops (returning `Unknown`) when either trips.
    pub fn arm_solver(&self, solver: &mut Solver) {
        solver.set_deadline(self.deadline);
        solver.set_interrupt(self.cancel.as_ref().map(CancelToken::shared_flag));
    }

    /// Arms a BDD manager likewise; exhaustion surfaces as
    /// [`eco_bdd::BddError::DeadlineExceeded`] / [`eco_bdd::BddError::Cancelled`].
    ///
    /// Under a fault plan arming `bdd-gc` / `bdd-reorder`, this also
    /// installs an event hook that vetoes the Nth matching pass with
    /// [`eco_bdd::BddError::Aborted`] — and forces tiny GC/reorder
    /// thresholds so the faulted machinery is guaranteed to run.
    pub fn arm_bdd(&self, manager: &mut BddManager) {
        manager.set_deadline(self.deadline);
        manager.set_interrupt(self.cancel.as_ref().map(CancelToken::shared_flag));
        #[cfg(any(test, feature = "fault-injection"))]
        {
            let gc_at = self.plan.policy.bdd_gc_abort_from;
            let reorder_at = self.plan.policy.bdd_reorder_abort_from;
            if gc_at.is_some() || reorder_at.is_some() {
                let gc_events = Arc::clone(&self.fault_state.bdd_gc_events);
                let reorder_events = Arc::clone(&self.fault_state.bdd_reorder_events);
                let injected = Arc::clone(&self.fault_state.injected);
                manager.set_event_hook(Some(Box::new(move |event| {
                    let (counter, at) = match event {
                        eco_bdd::BddEvent::Gc => (&gc_events, gc_at),
                        eco_bdd::BddEvent::Reorder => (&reorder_events, reorder_at),
                        _ => return Ok(()),
                    };
                    let n = counter.fetch_add(1, Ordering::Relaxed) + 1;
                    if matches!(at, Some(a) if n >= a) {
                        injected.fetch_add(1, Ordering::Relaxed);
                        return Err(eco_bdd::BddError::Aborted);
                    }
                    Ok(())
                })));
                if gc_at.is_some() {
                    manager.set_gc_threshold(Some(64));
                }
                if reorder_at.is_some() {
                    manager.set_reorder_threshold(Some(128));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Deterministic fault injection (no-ops unless enabled).
    // ------------------------------------------------------------------

    /// Counts one per-output BDD domain attempt; `true` when the policy says
    /// this attempt must hit the node limit.
    #[inline]
    pub(crate) fn inject_bdd_node_limit(&self) -> bool {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            let n = self
                .fault_state
                .bdd_attempts
                .fetch_add(1, Ordering::Relaxed)
                + 1;
            if matches!(self.plan.policy.bdd_node_limit_from, Some(at) if n >= at) {
                self.fault_state.injected.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            return false;
        }
        #[allow(unreachable_code)]
        false
    }

    /// Counts one SAT validation; `true` when the policy says this
    /// validation must report budget exhaustion.
    #[inline]
    pub(crate) fn inject_sat_exhaust(&self) -> bool {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            let n = self
                .fault_state
                .sat_validations
                .fetch_add(1, Ordering::Relaxed)
                + 1;
            if matches!(self.plan.policy.sat_exhaust_from, Some(at) if n >= at) {
                self.fault_state.injected.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            return false;
        }
        #[allow(unreachable_code)]
        false
    }

    /// Counts one per-output search; panics when the policy says this search
    /// must die. The engine isolates the panic and falls back.
    #[inline]
    pub(crate) fn inject_search_panic(&self) {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            let n = self.fault_state.searches.fetch_add(1, Ordering::Relaxed) + 1;
            if matches!(self.plan.policy.panic_at, Some(at) if n == at) {
                self.fault_state.injected.fetch_add(1, Ordering::Relaxed);
                panic!("synthetic fault: injected panic in per-output search #{n}");
            }
        }
    }

    /// Counts one entry to a span point, firing any cancellation or abort
    /// the plan schedules there.
    ///
    /// A scheduled *cancellation* trips the budget exactly as an external
    /// [`CancelToken`] would — downstream code winds down along the normal
    /// degradation ladder. A scheduled *abort* simulates a hard crash
    /// (SIGKILL): `EcoError::InjectedAbort` propagates out of the run and
    /// nothing else is written; a rerun resumes from whatever was durably
    /// checkpointed. No-op (always `Ok`) without fault injection.
    #[inline]
    pub(crate) fn fault_span(&self, _point: SpanPoint) -> Result<(), crate::EcoError> {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            let n = self.fault_state.spans[_point.index()].fetch_add(1, Ordering::Relaxed) + 1;
            if matches!(self.plan.cancel_at, Some((p, at)) if p == _point && at == n) {
                self.fault_state.cancelled.store(true, Ordering::Relaxed);
                self.fault_state.injected.fetch_add(1, Ordering::Relaxed);
            }
            if matches!(self.plan.abort_at, Some((p, at)) if p == _point && at == n) {
                self.fault_state.injected.fetch_add(1, Ordering::Relaxed);
                return Err(crate::EcoError::InjectedAbort);
            }
        }
        Ok(())
    }

    /// The [`Vfs`] the persistent cache must use: the plan's fault VFS when
    /// cache I/O faults are scheduled, else `None` (real I/O).
    ///
    /// The fault VFS is built once and shared so open and commit observe
    /// one continuous call sequence.
    pub(crate) fn cache_vfs(&self) -> Option<Arc<dyn Vfs>> {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            if !self.plan.cache_io.is_noop() {
                let vfs = self
                    .fault_state
                    .cache_vfs
                    .get_or_init(|| Arc::new(eco_cache::FaultVfs::new(self.plan.cache_io)));
                return Some(Arc::clone(vfs) as Arc<dyn Vfs>);
            }
        }
        None
    }

    /// The [`Vfs`] the checkpoint store must use (see
    /// [`Budget::cache_vfs`]).
    pub(crate) fn checkpoint_vfs(&self) -> Option<Arc<dyn Vfs>> {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            if !self.plan.checkpoint_io.is_noop() {
                let vfs = self
                    .fault_state
                    .checkpoint_vfs
                    .get_or_init(|| Arc::new(eco_cache::FaultVfs::new(self.plan.checkpoint_io)));
                return Some(Arc::clone(vfs) as Arc<dyn Vfs>);
            }
        }
        None
    }

    /// The retry schedule for cache/checkpoint I/O: the default (real
    /// backoff sleeps) in production, the deterministic no-sleep schedule
    /// whenever a fault plan is active so chaos sweeps stay fast.
    pub(crate) fn io_retry(&self) -> RetryPolicy {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            if !self.plan.is_noop() {
                return RetryPolicy::no_sleep();
            }
        }
        RetryPolicy::default()
    }

    /// Total faults fired so far by this budget's plan, including I/O
    /// faults from the plan's VFSs. Always 0 without fault injection.
    pub fn faults_fired(&self) -> u64 {
        #[cfg(any(test, feature = "fault-injection"))]
        {
            let mut n = self.fault_state.injected.load(Ordering::Relaxed);
            if let Some(vfs) = self.fault_state.cache_vfs.get() {
                n += vfs.injected();
            }
            if let Some(vfs) = self.fault_state.checkpoint_vfs.get() {
                n += vfs.injected();
            }
            return n;
        }
        #[allow(unreachable_code)]
        0
    }
}

// ----------------------------------------------------------------------
// Degradation accounting
// ----------------------------------------------------------------------

/// Why one output's search was cut short.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradeReason {
    /// The run's wall-clock deadline passed.
    DeadlineExceeded,
    /// The run was cancelled through its [`CancelToken`].
    Cancelled,
    /// The sampling-domain BDD exceeded its node budget even at the
    /// smallest candidate-pin cap.
    BddNodeLimit,
    /// SAT validation exhausted its conflict budget without a verdict.
    SatBudgetExhausted,
    /// The search panicked; the payload is the panic message.
    SearchPanicked(String),
    /// The search returned an error; the payload is its display form.
    SearchError(String),
    /// The per-output proposal validated in isolation but conflicted with a
    /// rewire merged for an earlier output (parallel runs validate each cone
    /// against the pre-patch circuit; see DESIGN.md "Parallel execution
    /// model").
    MergeConflict,
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            DegradeReason::Cancelled => write!(f, "cancelled"),
            DegradeReason::BddNodeLimit => write!(f, "bdd node limit"),
            DegradeReason::SatBudgetExhausted => write!(f, "sat budget exhausted"),
            DegradeReason::SearchPanicked(msg) => write!(f, "search panicked: {msg}"),
            DegradeReason::SearchError(msg) => write!(f, "search error: {msg}"),
            DegradeReason::MergeConflict => write!(f, "merge conflict between per-output patches"),
        }
    }
}

/// How the engine recovered from a cut-short search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// Committed the best rewiring validated before the cut-off.
    CommittedBest,
    /// Applied the §3.3 output-rewire fallback (spec cone clone).
    OutputRewireFallback,
}

impl fmt::Display for DegradeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeAction::CommittedBest => write!(f, "committed best validated option"),
            DegradeAction::OutputRewireFallback => write!(f, "output-rewire fallback"),
        }
    }
}

/// One output whose rectification was degraded rather than searched to
/// completion, and how it was still rectified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Label of the affected output.
    pub output: String,
    /// Why the search was cut short.
    pub reason: DegradeReason,
    /// How the output was rectified anyway.
    pub action: DegradeAction,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output {:?}: {} -> {}",
            self.output, self.reason, self.action
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        assert_eq!(b.status(), BudgetStatus::Ok);
        assert!(!b.is_exhausted());
        assert_eq!(b.remaining(), None);
        assert_eq!(b.degrade_reason(), None);
    }

    #[test]
    fn expired_deadline_reports_exhaustion() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert_eq!(b.status(), BudgetStatus::DeadlineExceeded);
        assert!(b.is_exhausted());
        assert_eq!(b.degrade_reason(), Some(DegradeReason::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_is_ok_and_counts_down() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert_eq!(b.status(), BudgetStatus::Ok);
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancel_token_trips_budget() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(&token);
        assert_eq!(b.status(), BudgetStatus::Ok);
        token.cancel();
        assert_eq!(b.status(), BudgetStatus::Cancelled);
        assert_eq!(b.degrade_reason(), Some(DegradeReason::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_takes_precedence_over_cancel() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::with_deadline(Duration::ZERO).with_cancel(&token);
        assert_eq!(b.status(), BudgetStatus::DeadlineExceeded);
    }

    #[test]
    fn fault_policy_counts_from_thresholds() {
        let b = Budget::unlimited().with_faults(FaultPolicy {
            bdd_node_limit_from: Some(2),
            sat_exhaust_from: Some(1),
            panic_at: None,
            ..FaultPolicy::default()
        });
        assert!(!b.inject_bdd_node_limit()); // attempt 1
        assert!(b.inject_bdd_node_limit()); // attempt 2
        assert!(b.inject_bdd_node_limit()); // attempt 3 (>= threshold)
        assert!(b.inject_sat_exhaust());
        b.inject_search_panic(); // no panic configured
    }

    #[test]
    fn fault_panic_fires_at_exact_count() {
        let b = Budget::unlimited().with_faults(FaultPolicy {
            panic_at: Some(2),
            ..FaultPolicy::default()
        });
        b.inject_search_panic(); // search 1: fine
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.inject_search_panic() // search 2: boom
        }));
        assert!(caught.is_err());
        b.inject_search_panic(); // search 3: fine again (exact match)
    }

    #[test]
    fn fault_span_cancel_trips_budget_at_exact_count() {
        let plan = FaultPlan::parse("cancel:merge@2").unwrap();
        let b = Budget::unlimited().with_fault_plan(plan);
        assert!(b.fault_span(SpanPoint::Merge).is_ok());
        assert_eq!(b.status(), BudgetStatus::Ok, "first merge entry is clean");
        assert!(b.fault_span(SpanPoint::Merge).is_ok());
        assert_eq!(b.status(), BudgetStatus::Cancelled);
        assert_eq!(b.degrade_reason(), Some(DegradeReason::Cancelled));
        assert_eq!(b.faults_fired(), 1);
    }

    #[test]
    fn fault_span_abort_errors_out_once() {
        let plan = FaultPlan::parse("abort:commit@1").unwrap();
        let b = Budget::unlimited().with_fault_plan(plan);
        assert!(b.fault_span(SpanPoint::Verify).is_ok(), "other spans clean");
        assert!(matches!(
            b.fault_span(SpanPoint::Commit),
            Err(crate::EcoError::InjectedAbort)
        ));
        assert!(b.fault_span(SpanPoint::Commit).is_ok(), "exact count only");
        assert_eq!(b.faults_fired(), 1);
    }

    #[test]
    fn fault_vfs_accessors_follow_the_plan() {
        let b = Budget::unlimited();
        assert!(b.cache_vfs().is_none());
        assert!(b.checkpoint_vfs().is_none());
        assert_eq!(b.faults_fired(), 0);
        let b = Budget::unlimited()
            .with_fault_plan(FaultPlan::parse("cache-read-error@1,ckpt-rename-error@1").unwrap());
        assert!(b.cache_vfs().is_some());
        assert!(b.checkpoint_vfs().is_some());
        // Faults from the shared VFS roll up into faults_fired.
        let vfs = b.cache_vfs().unwrap();
        assert!(vfs.read(std::path::Path::new("/nonexistent")).is_err());
        assert_eq!(b.faults_fired(), 1);
    }

    #[test]
    fn degradation_display_is_informative() {
        let d = Degradation {
            output: "y".into(),
            reason: DegradeReason::DeadlineExceeded,
            action: DegradeAction::OutputRewireFallback,
        };
        let s = d.to_string();
        assert!(s.contains("\"y\""));
        assert!(s.contains("deadline exceeded"));
        assert!(s.contains("fallback"));
        assert!(!DegradeReason::SearchPanicked("boom".into())
            .to_string()
            .is_empty());
        assert!(!DegradeAction::CommittedBest.to_string().is_empty());
    }
}
