//! **syseco** — rewire-based ECO rectification with symbolic sampling.
//!
//! A Rust reproduction of *Comprehensive Search for ECO Rectification Using
//! Symbolic Sampling* (Kravets, Lee, Jiang — DAC 2019). Given a heavily
//! optimized implementation `C` and a lightly synthesized revised
//! specification `C'`, the engine finds a minimal **patch**: a set of
//! rewire operations `p_1/s_1, …, p_m/s_m` reconnecting sink pins of `C`
//! to existing nets of `C` or cloned nets of `C'` (paper §3.3).
//!
//! The search is *functional*, not structural: candidate rectification
//! points are enumerated through the characteristic function
//! `H(t) = ∀x ∃y (h(x,y,t) ≡ f'(x))` (§4.2), candidate rewirings through
//! `Ξ(c) = ∀x,y (L ⇒ h ∧ h ⇒ U)` (§4.4), and both computations are cast
//! into a compact **symbolic sampling domain** over error minterms (§5.1),
//! with resource-constrained SAT validating every candidate on the exact
//! domain and feeding false positives back as new samples.
//!
//! # Quick start
//!
//! ```
//! use eco_netlist::{Circuit, GateKind};
//! use syseco::{EcoOptions, Syseco};
//!
//! # fn main() -> Result<(), syseco::EcoError> {
//! // Implementation computes AND where the revision wants OR.
//! let mut c = Circuit::new("impl");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let g = c.add_gate(GateKind::And, &[a, b])?;
//! c.add_output("y", g);
//! let mut s = Circuit::new("spec");
//! let a = s.add_input("a");
//! let b = s.add_input("b");
//! let g = s.add_gate(GateKind::Or, &[a, b])?;
//! s.add_output("y", g);
//!
//! let options = EcoOptions::builder().num_samples(64).jobs(1).build();
//! let result = Syseco::new(options).rectify(&c, &s)?;
//! assert!(syseco::verify_rectification(&result.patched, &s)?);
//! println!("patch: {:?} in {:?}", result.stats, result.runtime);
//! # Ok(())
//! # }
//! ```
//!
//! Per-output searches run on a worker pool sized by
//! [`EcoOptions::jobs`] (default: available parallelism); patches are
//! bit-identical for every worker count. Use a [`Session`] to attach a
//! [`CancelToken`] or a live [`ProgressEvent`] observer.
//!
//! # Module map (paper section → module)
//!
//! | Module | Paper | Role |
//! |---|---|---|
//! | [`correspond`] | §3.1 | label-based port correspondence |
//! | [`error_domain`] | §4.3, §5.1 | error minterm collection (`𝔼`) |
//! | [`sampling`] | §5.1 | sampling functions `g(z)`, z-domain evaluation |
//! | [`points`] | §4.2 | `H(t)`, prime-cube point-set enumeration |
//! | [`rewire_nets`] | §4.3 | structural filter + utility ranking |
//! | [`choices`] | §4.4 | `R`, `L`, `U`, `Ξ(c)` |
//! | [`validate`] | §5.1–2 | exact-domain SAT validation, refinement |
//! | [`rectify`] | §5.2 | the `RewireRectification` driver |
//! | [`patch`] | §3.3, §5.2 | patch model, Table-2 accounting, input sweep |
//! | [`baseline`] | §6 | DeltaSyn-style and cone-rewrite baselines |

pub mod baseline;
pub mod budget;
mod checkpoint;
pub mod choices;
pub mod correspond;
mod engine;
mod error;
pub mod error_domain;
pub mod fault;
pub mod fuzz;
mod memo;
mod options;
pub mod patch;
pub mod points;
pub mod prefilter;
pub mod progress;
pub mod rectify;
pub mod rewire_nets;
pub mod sampling;
mod schedule;
pub mod service;
mod session;
pub mod validate;

pub use budget::{Budget, BudgetStatus, CancelToken, Degradation, DegradeAction, DegradeReason};
pub use engine::{verify_rectification, EcoResult, Syseco};
pub use error::EcoError;
pub use fault::SpanPoint;
#[cfg(any(test, feature = "fault-injection"))]
pub use fault::{FaultPlan, FaultPolicy};
pub use options::{EcoOptions, EcoOptionsBuilder, SamplePolicy};
pub use patch::{Patch, PatchStats, RewireOp};
pub use progress::{OutputAction, ProgressCallback, ProgressEvent};
pub use rectify::{rewire_rectify, OutputTiming, RectifyStats};
pub use session::Session;

/// Persistent incremental-ECO caching (re-export of the `eco-cache`
/// crate): content-addressed structural signatures and the on-disk record
/// store behind [`EcoOptions::cache_dir`]. See DESIGN.md §11.
pub use eco_cache as cache;
pub use eco_cache::CacheMode;

/// The multi-tenant batch rectification service layer (re-export of the
/// `eco-serve` crate): framed wire protocol, weighted-fair scheduler,
/// daemon server, and OpenMetrics endpoint behind the `syseco-serve`
/// binary. Plug the engine in with [`service::EngineRunner`]. See
/// DESIGN.md §15.
pub use eco_serve as serve;
pub use service::EngineRunner;

/// Structured tracing and metrics (re-export of the `eco-telemetry`
/// crate): build a [`Telemetry`] hub, attach it with
/// [`Session::with_telemetry`], then export via
/// [`telemetry::export::spans_jsonl`], [`telemetry::export::chrome_trace`],
/// or [`telemetry::export::metrics_json`].
pub use eco_telemetry as telemetry;
pub use eco_telemetry::{MetricsSnapshot, SpanRecord, Telemetry};
