//! ECO test-case generation for syseco.
//!
//! The paper evaluates on 11 proprietary microprocessor ECOs (Table 1) plus
//! 4 timing-sensitive designs (Table 3). Those artifacts are not available,
//! so this crate generates **deterministic synthetic equivalents** that
//! preserve the properties the algorithms interact with:
//!
//! * each case is a word-level RTL design whose *implementation* is produced
//!   by heavy optimization (structural hashing, restructuring, SAT sweeping)
//!   of the original specification — structurally dissimilar from
//! * the *revised specification*, obtained by injecting a localized
//!   functional [revision](RevisionKind) and synthesizing lightly, and
//! * the revision touches a controlled fraction of the outputs, scaled to
//!   mirror the shape of the paper's Table 1 rows (sizes ~50–100× smaller).
//!
//! A designer's patch-size estimate (Table 2, column 2) is approximated by
//! lightweight-synthesizing the injected change in isolation.
//!
//! # Example
//!
//! ```no_run
//! let cases = eco_workload::table1_cases();
//! assert_eq!(cases.len(), 11);
//! for case in &cases {
//!     println!("{}: {} gates", case.id, case.implementation_stats().gates);
//! }
//! ```

mod cases;
mod generator;
mod revision;

pub use cases::{
    chain_cases, chain_params, scaling_case, scaling_params, serve_cases, serve_params,
    table1_cases, table1_params, timing_cases, timing_params,
};
pub use generator::{build_base, build_case, try_build_case, CaseParams, EcoCase, GeneratorError};
pub use revision::RevisionKind;
