//! The benchmark suite: 11 Table-1-shaped ECO cases and 4 timing cases.

use crate::generator::{build_case, CaseParams, EcoCase};
use crate::revision::RevisionKind;

/// Parameters of the 11 ECO cases mirroring the shape of the paper's
/// Table 1 (sizes scaled ~50–100× down; the revised-output fraction and the
/// relative input/output/gate proportions follow the corresponding rows).
pub fn table1_params() -> Vec<CaseParams> {
    use RevisionKind as R;
    vec![
        // 1: large, ~11% outputs revised.
        CaseParams {
            id: 1,
            name: "core1",
            seed: 0x0101,
            input_words: 26,
            width: 8,
            logic_signals: 130,
            output_words: 15,
            revisions: vec![(0, R::GateTermAdded), (4, R::ConditionFlip)],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
        // 2: tiny, two thirds of outputs revised.
        CaseParams {
            id: 2,
            name: "ctrl2",
            seed: 0x0202,
            input_words: 11,
            width: 6,
            logic_signals: 22,
            output_words: 6,
            revisions: vec![
                (0, R::SharedGating),
                (1, R::PolarityFlip),
                (2, R::ConstantChange),
                (3, R::MuxBranchSwap),
            ],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
        // 3: the largest case, ~8% revised.
        CaseParams {
            id: 3,
            name: "dp3",
            seed: 0x0303,
            input_words: 31,
            width: 8,
            logic_signals: 200,
            output_words: 29,
            revisions: vec![(0, R::ConditionFlip), (9, R::GateTermAdded)],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
        // 4: narrow words, small revised slice.
        CaseParams {
            id: 4,
            name: "dec4",
            seed: 0x0404,
            input_words: 30,
            width: 3,
            logic_signals: 150,
            output_words: 7,
            revisions: vec![(0, R::ConstantChange)],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
        // 5: small control block, ~46% revised.
        CaseParams {
            id: 5,
            name: "ctl5",
            seed: 0x0505,
            input_words: 10,
            width: 5,
            logic_signals: 24,
            output_words: 6,
            revisions: vec![
                (0, R::PolarityFlip),
                (1, R::ConditionFlip),
                (2, R::SingleBitFlip),
            ],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
        // 6: mid-size, a single-bit revision (the paper's 0.3% row).
        CaseParams {
            id: 6,
            name: "exu6",
            seed: 0x0606,
            input_words: 28,
            width: 4,
            logic_signals: 190,
            output_words: 10,
            revisions: vec![(0, R::SingleBitFlip)],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
        // 7: ~9.5% revised.
        CaseParams {
            id: 7,
            name: "lsu7",
            seed: 0x0707,
            input_words: 18,
            width: 6,
            logic_signals: 110,
            output_words: 12,
            revisions: vec![(0, R::SharedGating)],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
        // 8: ~20% revised.
        CaseParams {
            id: 8,
            name: "ifu8",
            seed: 0x0808,
            input_words: 19,
            width: 4,
            logic_signals: 95,
            output_words: 8,
            revisions: vec![(0, R::MuxBranchSwap), (3, R::ConstantChange)],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
        // 9: small, one revised word.
        CaseParams {
            id: 9,
            name: "mmu9",
            seed: 0x0909,
            input_words: 16,
            width: 4,
            logic_signals: 55,
            output_words: 13,
            revisions: vec![(0, R::GateTermAdded)],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
        // 10: ~6% revised.
        CaseParams {
            id: 10,
            name: "fpu10",
            seed: 0x0A0A,
            input_words: 14,
            width: 6,
            logic_signals: 50,
            output_words: 11,
            revisions: vec![(0, R::ConditionFlip)],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
        // 11: ~3% revised, two single-bit flips.
        CaseParams {
            id: 11,
            name: "iou11",
            seed: 0x0B0B,
            input_words: 17,
            width: 6,
            logic_signals: 62,
            output_words: 10,
            revisions: vec![(0, R::SingleBitFlip), (5, R::SingleBitFlip)],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
    ]
}

/// Parameters of the 4 timing-sensitive cases of Table 3 (ids 12–15):
/// deeper arithmetic chains where patch depth shows up in slack.
pub fn timing_params() -> Vec<CaseParams> {
    use RevisionKind as R;
    let base =
        |id: u32, name: &'static str, seed: u64, rev: Vec<(usize, RevisionKind)>| CaseParams {
            id,
            name,
            seed,
            input_words: 10,
            width: 8,
            logic_signals: 60,
            output_words: 6,
            revisions: rev,
            heavy_optimization: true,
            aggressive_optimization: true,
        };
    vec![
        base(12, "tmg12", 0x0C0C, vec![(0, R::GateTermAdded)]),
        base(
            13,
            "tmg13",
            0x0D0D,
            vec![(0, R::ConstantChange), (2, R::ConditionFlip)],
        ),
        base(
            14,
            "tmg14",
            0x0E0E,
            vec![(0, R::SharedGating), (3, R::PolarityFlip)],
        ),
        base(15, "tmg15", 0x0F0F, vec![(1, R::MuxBranchSwap)]),
    ]
}

/// Parameters of the thread-scaling case (id 16): many independently
/// revised words so at least 8 bit-outputs fail, giving the per-output
/// rectification scheduler enough independent cones to fan out across.
pub fn scaling_params() -> CaseParams {
    use RevisionKind as R;
    CaseParams {
        id: 16,
        name: "par16",
        seed: 0x1010,
        input_words: 12,
        width: 4,
        logic_signals: 60,
        output_words: 8,
        revisions: vec![
            (0, R::PolarityFlip),
            (2, R::ConditionFlip),
            (4, R::ConstantChange),
            (6, R::MuxBranchSwap),
        ],
        heavy_optimization: true,
        aggressive_optimization: false,
    }
}

/// Builds the thread-scaling case of [`scaling_params`].
pub fn scaling_case() -> EcoCase {
    build_case(&scaling_params())
}

/// Parameters of the incremental revision chain (ids 17–19): one design
/// revised cumulatively, where step `k` applies the first `k+1` revisions
/// of the full list. Every step shares the same seed, so the heavily
/// optimized implementation is bit-identical across the chain and only the
/// lightly synthesized specification evolves — the shape of a real ECO
/// sequence, and the workload the persistent cache warm-starts across.
pub fn chain_params() -> Vec<CaseParams> {
    use RevisionKind as R;
    let full = [
        (0, R::PolarityFlip),
        (2, R::ConstantChange),
        (4, R::ConditionFlip),
    ];
    let names = ["chain17", "chain18", "chain19"];
    (0..full.len())
        .map(|k| CaseParams {
            id: 17 + k as u32,
            name: names[k],
            seed: 0x1111,
            input_words: 10,
            width: 4,
            logic_signals: 48,
            output_words: 6,
            revisions: full[..=k].to_vec(),
            heavy_optimization: true,
            aggressive_optimization: false,
        })
        .collect()
}

/// Builds the revision chain of [`chain_params`].
pub fn chain_cases() -> Vec<EcoCase> {
    chain_params().iter().map(build_case).collect()
}

/// Parameters of the three service-calibration cases behind
/// `syseco-load` (DESIGN.md §15): deliberately small jobs — sub-second
/// even in debug builds — spanning a 1:2:4 size ladder, so the load
/// generator can measure daemon capacity and then drive controlled 1x/2x/4x
/// overload without a single job dominating the queue.
pub fn serve_params() -> Vec<CaseParams> {
    use RevisionKind as R;
    vec![
        CaseParams {
            id: 20,
            name: "serve-s",
            seed: 0x2020,
            input_words: 2,
            width: 2,
            logic_signals: 6,
            output_words: 2,
            revisions: vec![(0, R::PolarityFlip)],
            heavy_optimization: false,
            aggressive_optimization: false,
        },
        CaseParams {
            id: 21,
            name: "serve-m",
            seed: 0x2121,
            input_words: 3,
            width: 2,
            logic_signals: 12,
            output_words: 3,
            revisions: vec![(0, R::ConstantChange), (1, R::PolarityFlip)],
            heavy_optimization: false,
            aggressive_optimization: false,
        },
        CaseParams {
            id: 22,
            name: "serve-l",
            seed: 0x2222,
            input_words: 4,
            width: 3,
            logic_signals: 24,
            output_words: 4,
            revisions: vec![(0, R::ConditionFlip), (2, R::ConstantChange)],
            heavy_optimization: true,
            aggressive_optimization: false,
        },
    ]
}

/// Builds the service-calibration cases of [`serve_params`].
pub fn serve_cases() -> Vec<EcoCase> {
    serve_params().iter().map(build_case).collect()
}

/// Builds the 11 ECO cases of Tables 1 and 2.
pub fn table1_cases() -> Vec<EcoCase> {
    table1_params().iter().map(build_case).collect()
}

/// Builds the 4 timing cases of Table 3.
pub fn timing_cases() -> Vec<EcoCase> {
    timing_params().iter().map(build_case).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_table1_params() {
        let p = table1_params();
        assert_eq!(p.len(), 11);
        let ids: Vec<u32> = p.iter().map(|c| c.id).collect();
        assert_eq!(ids, (1..=11).collect::<Vec<_>>());
    }

    #[test]
    fn four_timing_params() {
        let p = timing_params();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0].id, 12);
        assert_eq!(p[3].id, 15);
    }

    #[test]
    fn scaling_case_has_enough_failing_outputs() {
        let case = scaling_case();
        case.implementation.check_well_formed().unwrap();
        case.spec.check_well_formed().unwrap();
        assert!(
            case.revised_outputs >= 8,
            "scaling case needs >= 8 failing bit-outputs, got {}",
            case.revised_outputs
        );
    }

    #[test]
    fn chain_shares_implementation_and_evolves_spec() {
        let cases = chain_cases();
        assert_eq!(cases.len(), 3);
        // The `.model caseNN` header differs per id; everything below it
        // (the structure the cache signatures hash) must be bit-identical.
        let body = |c: &eco_netlist::Circuit| {
            let blif = eco_netlist::write_blif(c);
            blif.split_once('\n').map(|(_, rest)| rest.to_string())
        };
        let base = body(&cases[0].implementation);
        for (k, case) in cases.iter().enumerate() {
            assert_eq!(case.id, 17 + k as u32);
            case.implementation.check_well_formed().unwrap();
            case.spec.check_well_formed().unwrap();
            assert!(case.revised_outputs > 0, "step {k} must fail somewhere");
            assert_eq!(
                body(&case.implementation),
                base,
                "step {k} implementation must be bit-identical to step 0"
            );
        }
        // Cumulative revisions: each step's spec differs from the previous.
        for w in cases.windows(2) {
            assert_ne!(
                eco_netlist::write_blif(&w[0].spec),
                eco_netlist::write_blif(&w[1].spec),
                "consecutive chain specs must differ"
            );
        }
    }

    #[test]
    fn smallest_case_builds_and_differs() {
        // Case 5 is cheap enough for a unit test.
        let params = &table1_params()[4];
        assert_eq!(params.id, 5);
        let case = build_case(params);
        case.implementation.check_well_formed().unwrap();
        case.spec.check_well_formed().unwrap();
        assert!(case.revised_outputs > 0);
        let stats = case.implementation_stats();
        assert!(stats.gates > 50, "case 5 should have real logic: {stats}");
        assert!(stats.outputs >= 20);
    }
}
