//! Writes one workload case's implementation and specification as BLIF
//! files, so shell-level tooling (the CI telemetry-schema job, manual CLI
//! runs) can feed the generated workloads to the `syseco` binary.
//!
//! ```text
//! emit_case <case> <impl-out.blif> <spec-out.blif>
//! ```
//!
//! `<case>` is a Table-1 case id (1–11), a Table-3 timing case id
//! (12–15), or `16`/`par16` for the parallel-scaling case.

use std::process::ExitCode;

use eco_netlist::write_blif;
use eco_workload::{build_case, scaling_params, table1_params, timing_params, EcoCase};

fn find_case(wanted: &str) -> Option<EcoCase> {
    let scaling = scaling_params();
    if wanted == scaling.name || wanted == scaling.id.to_string() {
        return Some(build_case(&scaling));
    }
    table1_params()
        .iter()
        .chain(timing_params().iter())
        .find(|p| wanted == p.name || wanted == p.id.to_string())
        .map(build_case)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [case_name, impl_out, spec_out] = &args[..] else {
        eprintln!("usage: emit_case <case-id-or-name> <impl-out.blif> <spec-out.blif>");
        return ExitCode::from(2);
    };
    let Some(case) = find_case(case_name) else {
        eprintln!("unknown case {case_name:?} (expected an id 1-16 or a case name)");
        return ExitCode::from(2);
    };
    if let Err(e) = std::fs::write(impl_out, write_blif(&case.implementation)) {
        eprintln!("cannot write {impl_out}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(spec_out, write_blif(&case.spec)) {
        eprintln!("cannot write {spec_out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "case {} ({}): {} -> {impl_out}, {spec_out}",
        case.id,
        case.name,
        case.implementation_stats()
    );
    ExitCode::SUCCESS
}
