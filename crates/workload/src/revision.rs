//! Functional revision kinds injected into specifications.

use eco_synth::rtl::WordExpr;
use rand::rngs::SmallRng;
use rand::Rng;

/// The kind of engineering change injected into a signal definition.
///
/// Each kind models a class of real specification revisions the paper's
/// introduction motivates; `SharedGating` is the Figure-1 scenario (a new
/// single-bit signal gating two multi-sink words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevisionKind {
    /// OR an extra gated term into the word (new functionality added).
    GateTermAdded,
    /// Swap the two data branches of a new mux wrapper (control bug fix).
    MuxBranchSwap,
    /// Negate the condition under which the word is selected.
    ConditionFlip,
    /// Change an XOR-ed constant (encoding fix).
    ConstantChange,
    /// Complement the whole word (polarity fix).
    PolarityFlip,
    /// Flip a single output bit (the smallest possible revision).
    SingleBitFlip,
    /// Figure 1: introduce a fresh single-bit signal `c` and re-gate the
    /// word with `c` (the sibling word uses `¬c`).
    SharedGating,
    /// Flip the word only when the helper word equals a random constant —
    /// a *sparse-error* revision whose error domain is a `2^-width`
    /// fraction of the input space (exercises error-domain sampling).
    SparseTrigger,
}

impl RevisionKind {
    /// All kinds, in the order the generator cycles through them.
    pub const ALL: [RevisionKind; 8] = [
        RevisionKind::GateTermAdded,
        RevisionKind::MuxBranchSwap,
        RevisionKind::ConditionFlip,
        RevisionKind::ConstantChange,
        RevisionKind::PolarityFlip,
        RevisionKind::SingleBitFlip,
        RevisionKind::SharedGating,
        RevisionKind::SparseTrigger,
    ];

    /// Applies this revision to the definition `old` of a `width`-bit word.
    ///
    /// `helper` is another in-scope word (same width) the revision may draw
    /// on; `gate_bit` is a 1-bit expression (for gating kinds). Returns the
    /// revised expression and a rough gate-count estimate of the change at
    /// the word level (the "designer estimate" contribution).
    pub fn apply(
        self,
        old: WordExpr,
        helper: WordExpr,
        gate_bit: WordExpr,
        width: u32,
        rng: &mut SmallRng,
    ) -> (WordExpr, usize) {
        let w = width as usize;
        match self {
            RevisionKind::GateTermAdded => {
                (WordExpr::or(old, WordExpr::gate(helper, gate_bit)), 2 * w)
            }
            RevisionKind::MuxBranchSwap => (
                WordExpr::mux(gate_bit, old.clone(), WordExpr::not(old)),
                2 * w,
            ),
            RevisionKind::ConditionFlip => {
                (WordExpr::mux(WordExpr::not(gate_bit), old, helper), w + 1)
            }
            RevisionKind::ConstantChange => {
                let mask = if width == 64 {
                    !0u64
                } else {
                    (1u64 << width) - 1
                };
                let k = rng.gen::<u64>() & mask;
                let k = if k == 0 { 1 } else { k };
                (WordExpr::xor(old, WordExpr::constant(k, width)), w / 2 + 1)
            }
            RevisionKind::PolarityFlip => (WordExpr::not(old), w),
            RevisionKind::SingleBitFlip => {
                let bit = rng.gen_range(0..width);
                (
                    WordExpr::xor(old, WordExpr::constant(1u64 << bit, width)),
                    1,
                )
            }
            RevisionKind::SharedGating => (
                WordExpr::or(
                    WordExpr::gate(old, gate_bit.clone()),
                    WordExpr::gate(helper, WordExpr::not(gate_bit)),
                ),
                3 * w,
            ),
            RevisionKind::SparseTrigger => {
                let mask = if width == 64 {
                    !0u64
                } else {
                    (1u64 << width) - 1
                };
                let k = rng.gen::<u64>() & mask;
                let trigger = WordExpr::eq(helper, WordExpr::constant(k, width));
                (
                    WordExpr::xor(
                        old,
                        WordExpr::gate(WordExpr::constant(mask, width), trigger),
                    ),
                    w + 2,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_synth::rtl::ReduceOp;
    use rand::SeedableRng;

    #[test]
    fn all_kinds_produce_different_expressions() {
        let mut rng = SmallRng::seed_from_u64(1);
        for kind in RevisionKind::ALL {
            let old = WordExpr::input("x");
            let helper = WordExpr::input("h");
            let bit = WordExpr::reduce(ReduceOp::Or, WordExpr::input("g"));
            let (revised, estimate) = kind.apply(old.clone(), helper, bit, 8, &mut rng);
            assert_ne!(revised, old, "{kind:?} must change the expression");
            assert!(estimate >= 1, "{kind:?} estimate must be positive");
        }
    }

    #[test]
    fn constant_change_never_zero_mask() {
        // A zero mask would be a no-op revision.
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let (revised, _) = RevisionKind::ConstantChange.apply(
                WordExpr::input("x"),
                WordExpr::input("h"),
                WordExpr::input("g"),
                4,
                &mut rng,
            );
            match revised {
                WordExpr::Xor(_, b) => match *b {
                    WordExpr::Const { value, .. } => assert_ne!(value, 0),
                    other => panic!("expected constant, got {other:?}"),
                },
                other => panic!("expected xor, got {other:?}"),
            }
        }
    }
}
