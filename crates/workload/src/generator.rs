//! Parametric ECO case generation.

use eco_netlist::{topo, Circuit, CircuitStats};
use eco_synth::lower::synthesize;
use eco_synth::opt::{optimize, OptOptions};
use eco_synth::rtl::{ReduceOp, RtlModule, WordExpr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::revision::RevisionKind;

/// Why a parameter set cannot produce a usable ECO case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeneratorError {
    /// The parameters are structurally degenerate (no inputs or no outputs
    /// can ever be produced), so no amount of reseeding helps.
    DegenerateParams {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Every retry produced a design whose outputs are all unreachable from
    /// the primary inputs (constant cones), which no rectification scenario
    /// can exercise.
    NoReachableOutputs {
        /// Number of generation attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeneratorError::DegenerateParams { reason } => {
                write!(f, "degenerate generator parameters: {reason}")
            }
            GeneratorError::NoReachableOutputs { attempts } => write!(
                f,
                "no input-reachable outputs after {attempts} generation attempt(s)"
            ),
        }
    }
}

impl std::error::Error for GeneratorError {}

/// Parameters of one generated ECO case.
#[derive(Debug, Clone)]
pub struct CaseParams {
    /// Case identifier (Table 1 row).
    pub id: u32,
    /// Human-readable name.
    pub name: &'static str,
    /// Determinism seed.
    pub seed: u64,
    /// Number of input words.
    pub input_words: usize,
    /// Width of every word in the design.
    pub width: u32,
    /// Number of intermediate signals.
    pub logic_signals: usize,
    /// Number of output words.
    pub output_words: usize,
    /// Revisions: `(output word index from the end, kind)`.
    pub revisions: Vec<(usize, RevisionKind)>,
    /// Optimization effort applied to derive the implementation.
    pub heavy_optimization: bool,
    /// Additionally round-trip the implementation through a depth-balanced
    /// AIG (production-style depth optimization; used by the timing cases).
    pub aggressive_optimization: bool,
}

/// A complete ECO test case.
#[derive(Debug, Clone)]
pub struct EcoCase {
    /// Case identifier.
    pub id: u32,
    /// Case name.
    pub name: String,
    /// The optimized current implementation `C`.
    pub implementation: Circuit,
    /// The lightly synthesized revised specification `C'`.
    pub spec: Circuit,
    /// Designer's estimate of an ideal patch, in gates (Table 2 col. 2).
    pub designer_estimate: usize,
    /// Number of bit-level outputs affected by the revision.
    pub revised_outputs: usize,
}

impl EcoCase {
    /// Table-1 statistics of the implementation.
    pub fn implementation_stats(&self) -> CircuitStats {
        CircuitStats::of(&self.implementation)
    }

    /// Percentage of outputs affected by the revision.
    pub fn revised_percent(&self) -> f64 {
        let total = self.implementation.num_outputs().max(1);
        100.0 * self.revised_outputs as f64 / total as f64
    }
}

/// Builds the original word-level design for `params`.
fn build_module(params: &CaseParams, rng: &mut SmallRng) -> RtlModule {
    let mut m = RtlModule::new(format!("case{}", params.id));
    let mut names: Vec<String> = Vec::new();
    for i in 0..params.input_words {
        let n = format!("in{i}");
        m.add_input(&n, params.width);
        names.push(n);
    }
    // Single-bit control inputs used by muxes and gating.
    let controls = (params.input_words / 4).max(2);
    let mut control_names = Vec::new();
    for i in 0..controls {
        let n = format!("ctl{i}");
        m.add_input(&n, 1);
        control_names.push(n);
    }
    let pick = |names: &[String], rng: &mut SmallRng, recent_bias: bool| -> WordExpr {
        let n = names.len();
        let idx = if recent_bias && n > 8 && rng.gen_bool(0.6) {
            rng.gen_range(n - 8..n)
        } else {
            rng.gen_range(0..n)
        };
        WordExpr::signal(names[idx].clone())
    };
    for i in 0..params.logic_signals {
        let a = pick(&names, rng, true);
        let b = pick(&names, rng, true);
        let ctl = WordExpr::input(control_names[rng.gen_range(0..controls)].clone());
        let expr = match rng.gen_range(0..8) {
            0 => WordExpr::and(a, b),
            1 => WordExpr::or(a, b),
            2 => WordExpr::xor(a, b),
            3 => WordExpr::add(a, b),
            4 => WordExpr::mux(ctl, a, b),
            5 => WordExpr::gate(a, ctl),
            6 => WordExpr::not(a),
            _ => {
                let mask = if params.width == 64 {
                    !0u64
                } else {
                    (1u64 << params.width) - 1
                };
                WordExpr::xor(a, WordExpr::constant(rng.gen::<u64>() & mask, params.width))
            }
        };
        let n = format!("s{i}");
        m.add_signal(&n, expr);
        names.push(n);
    }
    // The last `output_words` signals become outputs.
    let first = names.len().saturating_sub(params.output_words);
    for (k, n) in names[first..].iter().enumerate() {
        m.add_output(format!("out{k}"), WordExpr::signal(n.clone()));
    }
    m
}

/// Rejects parameter sets that can never produce a usable case, before any
/// synthesis work is spent on them.
fn check_params(params: &CaseParams) -> Result<(), GeneratorError> {
    if params.input_words == 0 {
        return Err(GeneratorError::DegenerateParams {
            reason: "input_words must be at least 1".into(),
        });
    }
    if params.output_words == 0 {
        return Err(GeneratorError::DegenerateParams {
            reason: "output_words must be at least 1".into(),
        });
    }
    if params.width == 0 || params.width > 64 {
        return Err(GeneratorError::DegenerateParams {
            reason: format!("width {} outside 1..=64", params.width),
        });
    }
    Ok(())
}

/// Whether at least one output cone of `circuit` contains a primary input —
/// the minimum a rectification scenario needs to be exercisable at all.
fn has_reachable_output(circuit: &Circuit) -> bool {
    if circuit.num_outputs() == 0 {
        return false;
    }
    let roots: Vec<_> = circuit.outputs().iter().map(|p| p.net().source()).collect();
    let in_cone = topo::tfi(circuit, &roots);
    circuit.inputs().iter().any(|&id| in_cone[id.index()])
}

/// Builds an ECO case from parameters: original design → optimized
/// implementation; revised design → lightly synthesized specification.
///
/// Degenerate parameter sets are rejected up front, and seed-dependent
/// degeneracy (a design whose outputs all optimize to constants) is retried
/// with perturbed seeds before giving up — callers never receive a case
/// with zero input-reachable outputs.
///
/// # Errors
///
/// [`GeneratorError::DegenerateParams`] for structurally impossible
/// parameters, [`GeneratorError::NoReachableOutputs`] when reseeding cannot
/// find a non-constant design.
///
/// # Panics
///
/// Panics when internal synthesis fails — the word-level builder only emits
/// elaborable modules.
pub fn try_build_case(params: &CaseParams) -> Result<EcoCase, GeneratorError> {
    check_params(params)?;
    const MAX_ATTEMPTS: u32 = 4;
    for attempt in 0..MAX_ATTEMPTS {
        // Attempt 0 uses the caller's seed untouched so existing cases are
        // byte-identical to what this generator always produced.
        let mut p = params.clone();
        if attempt > 0 {
            p.seed = params
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(attempt)));
        }
        let case = build_case_unchecked(&p);
        if has_reachable_output(&case.implementation) && has_reachable_output(&case.spec) {
            return Ok(case);
        }
    }
    Err(GeneratorError::NoReachableOutputs {
        attempts: MAX_ATTEMPTS,
    })
}

/// Builds just the optimized base netlist of `params` — the original design
/// with **no revision injected**. This is the seeded-random-netlist hook
/// behind mutation-based fuzzing (`eco-fuzz`), which derives its own revised
/// specification by structural mutation instead of word-level revision.
///
/// The same reachability guarantee as [`try_build_case`] applies.
///
/// # Errors
///
/// Same conditions as [`try_build_case`].
pub fn build_base(params: &CaseParams) -> Result<Circuit, GeneratorError> {
    check_params(params)?;
    const MAX_ATTEMPTS: u32 = 4;
    for attempt in 0..MAX_ATTEMPTS {
        let seed = if attempt == 0 {
            params.seed
        } else {
            params
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(attempt)))
        };
        let mut p = params.clone();
        p.seed = seed;
        let mut rng = SmallRng::seed_from_u64(seed);
        let original = build_module(&p, &mut rng);
        let mut implementation = synthesize(&original).expect("generated module must elaborate");
        let opt = if p.aggressive_optimization {
            OptOptions::aggressive(seed ^ 0xC0FFEE)
        } else if p.heavy_optimization {
            OptOptions::heavy(seed ^ 0xC0FFEE)
        } else {
            OptOptions::light(seed ^ 0xC0FFEE)
        };
        optimize(&mut implementation, &opt).expect("optimization must succeed");
        if has_reachable_output(&implementation) {
            return Ok(implementation);
        }
    }
    Err(GeneratorError::NoReachableOutputs {
        attempts: MAX_ATTEMPTS,
    })
}

/// Infallible wrapper over [`try_build_case`] for the trusted parameter
/// tables ([`crate::table1_params`]/[`crate::timing_params`]) and tests.
///
/// # Panics
///
/// Panics when the parameters are degenerate (see [`try_build_case`]) or
/// when internal synthesis fails.
pub fn build_case(params: &CaseParams) -> EcoCase {
    try_build_case(params).expect("generator parameters must be non-degenerate")
}

/// The raw single-attempt case builder; reachability is checked by the
/// callers above.
fn build_case_unchecked(params: &CaseParams) -> EcoCase {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let original = build_module(params, &mut rng);

    // Inject revisions into a copy of the module.
    let mut revised = original.clone();
    let mut estimate = 0usize;
    let mut revised_bits = 0usize;
    let mut revised_words: Vec<String> = Vec::new();
    let out_count = original.outputs().len();
    for (back_index, kind) in &params.revisions {
        let port = &original.outputs()[out_count - 1 - (back_index % out_count)];
        let signal = port.signal.clone();
        if revised_words.contains(&signal) {
            continue; // one revision per word keeps the accounting simple
        }
        let old = revised
            .signal_expr(&signal)
            .expect("output signals are defined")
            .clone();
        // Helper word: another (unrevised) output signal or an input.
        let helper_name = original
            .outputs()
            .iter()
            .map(|p| p.signal.clone())
            .find(|s| *s != signal && !revised_words.contains(s))
            .unwrap_or_else(|| "in0".to_string());
        let helper = WordExpr::signal(helper_name);
        let gate_bit = WordExpr::reduce(
            ReduceOp::Or,
            WordExpr::input(format!("ctl{}", rng.gen_range(0..2))),
        );
        let (new_expr, est) = kind.apply(old, helper, gate_bit, params.width, &mut rng);
        revised.replace_signal(&signal, new_expr);
        estimate += est;
        revised_bits += match kind {
            RevisionKind::SingleBitFlip => 1,
            _ => params.width as usize,
        };
        revised_words.push(signal);
    }

    // Implementation: synthesize the original and optimize heavily.
    let mut implementation = synthesize(&original).expect("generated module must elaborate");
    let opt = if params.aggressive_optimization {
        OptOptions::aggressive(params.seed ^ 0xC0FFEE)
    } else if params.heavy_optimization {
        OptOptions::heavy(params.seed ^ 0xC0FFEE)
    } else {
        OptOptions::light(params.seed ^ 0xC0FFEE)
    };
    optimize(&mut implementation, &opt).expect("optimization must succeed");

    // Specification: lightweight synthesis of the revised module.
    let mut spec = synthesize(&revised).expect("revised module must elaborate");
    optimize(&mut spec, &OptOptions::light(params.seed ^ 0xFACE))
        .expect("light cleanup must succeed");

    let revised_outputs = revised_bits;
    EcoCase {
        id: params.id,
        name: params.name.to_string(),
        implementation,
        spec,
        designer_estimate: estimate.max(1),
        revised_outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> CaseParams {
        CaseParams {
            id: 99,
            name: "unit",
            seed: 42,
            input_words: 3,
            width: 4,
            logic_signals: 12,
            output_words: 3,
            revisions: vec![(0, RevisionKind::PolarityFlip)],
            heavy_optimization: true,
            aggressive_optimization: false,
        }
    }

    #[test]
    fn case_is_well_formed_and_deterministic() {
        let a = build_case(&small_params());
        let b = build_case(&small_params());
        a.implementation.check_well_formed().unwrap();
        a.spec.check_well_formed().unwrap();
        assert_eq!(
            CircuitStats::of(&a.implementation),
            CircuitStats::of(&b.implementation)
        );
        assert_eq!(CircuitStats::of(&a.spec), CircuitStats::of(&b.spec));
    }

    #[test]
    fn implementation_differs_from_spec_on_revised_outputs() {
        let case = build_case(&small_params());
        // At least one input assignment must distinguish them (the revision
        // is functional, not cosmetic). Random search over a few patterns.
        let mut rng = SmallRng::seed_from_u64(7);
        let n = case.implementation.num_inputs();
        let mut found = false;
        'search: for _ in 0..512 {
            let assign: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let iv = case.implementation.eval(&assign).unwrap();
            // Translate input order by name for the spec.
            let mut spec_assign = vec![false; case.spec.num_inputs()];
            for (pos, &id) in case.implementation.inputs().iter().enumerate() {
                let label = case.implementation.node(id).name().unwrap();
                if let Some(w) = case.spec.input_by_name(label) {
                    let spos = case.spec.input_position(w.source()).unwrap();
                    spec_assign[spos] = assign[pos];
                }
            }
            let sv = case.spec.eval(&spec_assign).unwrap();
            for (i, port) in case.implementation.outputs().iter().enumerate() {
                let sidx = case.spec.output_by_name(port.name()).unwrap() as usize;
                if iv[i] != sv[sidx] {
                    found = true;
                    break 'search;
                }
            }
        }
        assert!(found, "revision must be observable");
    }

    #[test]
    fn estimate_positive_and_revised_outputs_counted() {
        let case = build_case(&small_params());
        assert!(case.designer_estimate >= 1);
        assert_eq!(case.revised_outputs, 4); // one word of width 4
        assert!(case.revised_percent() > 0.0);
    }

    #[test]
    fn degenerate_params_are_rejected_not_emitted() {
        // Zero outputs can never produce a scenario: reject up front.
        let mut p = small_params();
        p.output_words = 0;
        assert!(matches!(
            try_build_case(&p),
            Err(GeneratorError::DegenerateParams { .. })
        ));
        assert!(build_base(&p).is_err());
        // Zero inputs would panic deep inside the module builder; reject.
        let mut p = small_params();
        p.input_words = 0;
        assert!(matches!(
            try_build_case(&p),
            Err(GeneratorError::DegenerateParams { .. })
        ));
        // Zero width words are meaningless.
        let mut p = small_params();
        p.width = 0;
        assert!(matches!(
            try_build_case(&p),
            Err(GeneratorError::DegenerateParams { .. })
        ));
    }

    #[test]
    fn accepted_cases_always_have_reachable_outputs() {
        let case = try_build_case(&small_params()).unwrap();
        assert!(has_reachable_output(&case.implementation));
        assert!(has_reachable_output(&case.spec));
    }

    #[test]
    fn base_hook_is_deterministic_and_unrevised() {
        let a = build_base(&small_params()).unwrap();
        let b = build_base(&small_params()).unwrap();
        assert_eq!(CircuitStats::of(&a), CircuitStats::of(&b));
        a.check_well_formed().unwrap();
        assert!(has_reachable_output(&a));
        // The base matches the case's implementation: same params, same
        // synthesis pipeline, no revision applied.
        let case = build_case(&small_params());
        assert_eq!(CircuitStats::of(&a), CircuitStats::of(&case.implementation));
    }

    #[test]
    fn unoptimized_variant_is_larger_or_equal_in_structure_similarity() {
        // Heavy optimization changes stats relative to light.
        let mut p = small_params();
        let heavy = build_case(&p);
        p.heavy_optimization = false;
        let light = build_case(&p);
        // Same function, different structure: node counts usually differ.
        assert_eq!(
            heavy.implementation.num_inputs(),
            light.implementation.num_inputs()
        );
    }
}
