//! Differential fuzzing for the syseco ECO engine.
//!
//! The engine has several independent ways of answering the same question
//! — is `f = f'`, and on which inputs do they differ? Bit-parallel
//! [simulation](eco_netlist::sim), SAT [CEC](eco_sat::cec), and
//! [BDD](eco_bdd) equivalence must agree with each other and with the
//! rectification pipeline built on top of them. This crate searches for
//! inputs where they don't:
//!
//! * [`scenario`] generates unbounded *rectifiable-by-construction*
//!   implementation/spec pairs: a seeded synthesized netlist
//!   (via `eco_workload::build_base`) mutated by semantics-changing
//!   rewrites ([`mutate`]) whose ground-truth delta is recorded;
//! * [`oracle`] runs each pair through every oracle and cross-checks the
//!   per-output verdicts, including concrete validation of every
//!   counterexample witness;
//! * [`shrink`] greedily minimizes any failing pair to a human-sized
//!   repro, serialized as a replayable `.eco-repro` file ([`repro`]).
//!
//! Pipeline-level checks (full `Syseco` rectification at several job
//! counts, cache cold/warm replay, byte-identical determinism) layer on
//! top of this crate in `syseco::fuzz`, which also hosts the `syseco-fuzz`
//! CLI.

mod error;
pub mod mutate;
pub mod oracle;
pub mod repro;
pub mod scenario;
pub mod shrink;

pub use error::FuzzError;
pub use mutate::{apply_random_mutation, mutate_n, MutationKind, MutationRecord};
pub use oracle::{
    check_conformance, cross_check_oracles, port_map, BddOracle, Disagreement, Oracle,
    OutputPairMap, PortMap, SatOracle, SimOracle, Verdict,
};
pub use repro::{parse_repro, write_repro, Repro, REPRO_HEADER};
pub use scenario::{generate, generate_chain, Scenario, ScenarioConfig};
pub use shrink::{gate_count, shrink_pair, ShrinkOutcome};
