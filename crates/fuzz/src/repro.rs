//! The `.eco-repro` file format: a replayable failing pair.
//!
//! A repro file captures everything needed to re-run a failure away from
//! the fuzzing session that found it: the originating seed and iteration,
//! the check that fired, and the (usually shrunk) implementation/spec pair
//! serialized in the BLIF dialect of [`eco_netlist::io`].
//!
//! ```text
//! # eco-repro v1
//! seed 17
//! iteration 204
//! check oracle:sim-vs-sat
//! detail sim=different but sat=equivalent on output "o3"
//! fault abort:commit@1          (optional: chaos-mode fault plan)
//! --- implementation
//! .model fuzz
//! ...
//! --- spec
//! .model fuzz
//! ...
//! --- end
//! ```

use eco_netlist::{read_blif, write_blif, Circuit};

use crate::FuzzError;

/// Header line identifying the format and version.
pub const REPRO_HEADER: &str = "# eco-repro v1";

/// A replayable failing case.
#[derive(Debug, Clone)]
pub struct Repro {
    /// Seed of the scenario that failed.
    pub seed: u64,
    /// Fuzzing iteration at which it failed.
    pub iteration: u64,
    /// The check that fired (see `Disagreement::check`).
    pub check: String,
    /// Free-form description of the failure.
    pub detail: String,
    /// Fault-plan spec active when the failure occurred (chaos mode), in
    /// the `name@count,...` notation of the engine's `FaultPlan`. `None`
    /// for plain fuzzing failures; when present, `syseco-fuzz replay`
    /// (built with `fault-injection`) re-arms the same plan.
    pub fault: Option<String>,
    /// The (shrunk) implementation.
    pub implementation: Circuit,
    /// The (shrunk) spec.
    pub spec: Circuit,
}

fn sanitize(text: &str) -> String {
    text.replace(['\n', '\r'], "; ")
}

/// Serializes a repro to the `.eco-repro` text format.
pub fn write_repro(repro: &Repro) -> String {
    let mut out = String::new();
    out.push_str(REPRO_HEADER);
    out.push('\n');
    out.push_str(&format!("seed {}\n", repro.seed));
    out.push_str(&format!("iteration {}\n", repro.iteration));
    out.push_str(&format!("check {}\n", sanitize(&repro.check)));
    out.push_str(&format!("detail {}\n", sanitize(&repro.detail)));
    if let Some(fault) = &repro.fault {
        out.push_str(&format!("fault {}\n", sanitize(fault)));
    }
    out.push_str("--- implementation\n");
    out.push_str(&write_blif(&repro.implementation));
    out.push_str("--- spec\n");
    out.push_str(&write_blif(&repro.spec));
    out.push_str("--- end\n");
    out
}

/// Parses a `.eco-repro` file.
///
/// # Errors
///
/// [`FuzzError::Repro`] for structural violations (bad header, missing
/// sections, malformed fields) and [`FuzzError::Blif`] when a circuit
/// section fails to parse.
pub fn parse_repro(text: &str) -> Result<Repro, FuzzError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(FuzzError::Repro {
        line: 1,
        reason: "empty file".into(),
    })?;
    if header.trim() != REPRO_HEADER {
        return Err(FuzzError::Repro {
            line: 1,
            reason: format!("expected {REPRO_HEADER:?}, found {header:?}"),
        });
    }
    let mut seed: Option<u64> = None;
    let mut iteration: Option<u64> = None;
    let mut check = String::new();
    let mut detail = String::new();
    let mut fault: Option<String> = None;
    let mut impl_text = String::new();
    let mut spec_text = String::new();
    // 0 = metadata, 1 = implementation, 2 = spec, 3 = done
    let mut section = 0u8;
    for (idx, raw) in lines {
        let line = idx + 1;
        let trimmed = raw.trim();
        match trimmed {
            "--- implementation" => {
                section = 1;
                continue;
            }
            "--- spec" => {
                section = 2;
                continue;
            }
            "--- end" => {
                section = 3;
                break;
            }
            _ => {}
        }
        match section {
            0 => {
                if trimmed.is_empty() {
                    continue;
                }
                let (key, value) = trimmed.split_once(' ').unwrap_or((trimmed, ""));
                match key {
                    "seed" => {
                        seed = Some(value.parse().map_err(|_| FuzzError::Repro {
                            line,
                            reason: format!("bad seed {value:?}"),
                        })?)
                    }
                    "iteration" => {
                        iteration = Some(value.parse().map_err(|_| FuzzError::Repro {
                            line,
                            reason: format!("bad iteration {value:?}"),
                        })?)
                    }
                    "check" => check = value.to_string(),
                    "detail" => detail = value.to_string(),
                    "fault" => fault = Some(value.to_string()),
                    _ => {
                        return Err(FuzzError::Repro {
                            line,
                            reason: format!("unknown field {key:?}"),
                        })
                    }
                }
            }
            1 => {
                impl_text.push_str(raw);
                impl_text.push('\n');
            }
            2 => {
                spec_text.push_str(raw);
                spec_text.push('\n');
            }
            _ => unreachable!("loop breaks at --- end"),
        }
    }
    if section != 3 {
        return Err(FuzzError::Repro {
            line: text.lines().count(),
            reason: "missing --- end".into(),
        });
    }
    if impl_text.is_empty() || spec_text.is_empty() {
        return Err(FuzzError::Repro {
            line: text.lines().count(),
            reason: "missing circuit section".into(),
        });
    }
    Ok(Repro {
        seed: seed.unwrap_or(0),
        iteration: iteration.unwrap_or(0),
        check,
        detail,
        fault,
        implementation: read_blif(&impl_text)?,
        spec: read_blif(&spec_text)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;

    fn sample() -> Repro {
        let mut a = Circuit::new("impl");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let g = a.add_gate(GateKind::And, &[x, y]).unwrap();
        a.add_output("o", g);
        let mut b = Circuit::new("spec");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let g = b.add_gate(GateKind::Or, &[x, y]).unwrap();
        b.add_output("o", g);
        Repro {
            seed: 17,
            iteration: 204,
            check: "oracle:sim-vs-sat".into(),
            detail: "multi\nline detail".into(),
            fault: None,
            implementation: a,
            spec: b,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let repro = sample();
        let text = write_repro(&repro);
        let parsed = parse_repro(&text).unwrap();
        assert_eq!(parsed.seed, 17);
        assert_eq!(parsed.iteration, 204);
        assert_eq!(parsed.check, "oracle:sim-vs-sat");
        assert_eq!(parsed.detail, "multi; line detail");
        for j in 0..4u8 {
            let v = [(j & 1) == 1, (j & 2) == 2];
            assert_eq!(
                parsed.implementation.eval(&v).unwrap(),
                repro.implementation.eval(&v).unwrap()
            );
            assert_eq!(parsed.spec.eval(&v).unwrap(), repro.spec.eval(&v).unwrap());
        }
        // A second roundtrip is byte-stable.
        assert_eq!(write_repro(&parsed), text);
        // No fault line when no plan was active.
        assert!(!text.contains("\nfault "));
        assert_eq!(parsed.fault, None);
    }

    #[test]
    fn fault_plan_roundtrips_when_present() {
        let repro = Repro {
            fault: Some("abort:commit@2,ckpt-short-write@1".into()),
            ..sample()
        };
        let text = write_repro(&repro);
        let parsed = parse_repro(&text).unwrap();
        assert_eq!(
            parsed.fault.as_deref(),
            Some("abort:commit@2,ckpt-short-write@1")
        );
        assert_eq!(write_repro(&parsed), text);
    }

    #[test]
    fn rejects_bad_header_and_truncation() {
        assert!(matches!(
            parse_repro("not a repro\n"),
            Err(FuzzError::Repro { line: 1, .. })
        ));
        let text = write_repro(&sample());
        let truncated = text.replace("--- end\n", "");
        assert!(matches!(
            parse_repro(&truncated),
            Err(FuzzError::Repro { .. })
        ));
        assert!(matches!(
            parse_repro(&text.replace("seed 17", "seed zebra")),
            Err(FuzzError::Repro { .. })
        ));
        assert!(matches!(
            parse_repro(&text.replace("seed 17", "flavor vanilla")),
            Err(FuzzError::Repro { .. })
        ));
    }
}
