//! Seeded generation of rectifiable implementation/spec pairs.

use eco_workload::{build_base, CaseParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::mutate::{mutate_n, MutationRecord};
use crate::FuzzError;
use eco_netlist::Circuit;

/// Size and mutation ranges for scenario generation.
///
/// All ranges are inclusive. The defaults are deliberately tiny so that a
/// full conformance pass (simulation, SAT, BDD, and the rectify pipeline)
/// over hundreds of scenarios stays fast even in debug builds.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Input word count range.
    pub input_words: (usize, usize),
    /// Word width range.
    pub width: (u32, u32),
    /// Intermediate signal count range.
    pub logic_signals: (usize, usize),
    /// Output word count range.
    pub output_words: (usize, usize),
    /// Number of mutations applied to derive the spec.
    pub mutations: (usize, usize),
    /// Whether the implementation is heavily optimized (slower, more
    /// structural divergence between the pair).
    pub heavy_optimization: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            input_words: (2, 3),
            width: (1, 2),
            logic_signals: (3, 8),
            output_words: (1, 3),
            mutations: (1, 3),
            heavy_optimization: false,
        }
    }
}

/// A generated differential-fuzzing case.
///
/// The implementation is an optimized synthesized netlist; the spec is the
/// same netlist with [`delta`](Scenario::delta) mutations applied, so the
/// pair is rectifiable by construction and `delta` is the ground truth the
/// engine's patch must account for.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed this scenario was derived from.
    pub seed: u64,
    /// The unmutated implementation `C`.
    pub implementation: Circuit,
    /// The mutated revised specification `C'`.
    pub spec: Circuit,
    /// Ground-truth mutations that turned `C` into `C'`.
    pub delta: Vec<MutationRecord>,
}

#[inline]
fn range(rng: &mut SmallRng, (lo, hi): (usize, usize)) -> usize {
    rng.gen_range(lo..=hi.max(lo))
}

/// Generates the scenario for `seed` under `config`.
///
/// Deterministic: the same `(seed, config)` always produces byte-identical
/// circuits and the same delta.
///
/// # Errors
///
/// [`FuzzError::Generator`] when the sampled parameters are degenerate
/// (only possible with a zero-width [`ScenarioConfig`]), and
/// [`FuzzError::Netlist`] if a mutation produces an ill-formed circuit (a
/// fuzzer bug by definition).
pub fn generate(seed: u64, config: &ScenarioConfig) -> Result<Scenario, FuzzError> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xEC0_F022);
    let params = CaseParams {
        id: (seed & 0xffff) as u32,
        name: "fuzz",
        seed: rng.gen(),
        input_words: range(&mut rng, config.input_words),
        width: range(&mut rng, (config.width.0 as usize, config.width.1 as usize)) as u32,
        logic_signals: range(&mut rng, config.logic_signals),
        output_words: range(&mut rng, config.output_words),
        revisions: Vec::new(),
        heavy_optimization: config.heavy_optimization,
        aggressive_optimization: false,
    };
    let implementation = build_base(&params)?;
    let mut spec = implementation.clone();
    let count = range(&mut rng, config.mutations);
    let delta = mutate_n(&mut spec, &mut rng, count)?;
    spec.sweep();
    spec.check_well_formed()?;
    Ok(Scenario {
        seed,
        implementation,
        spec,
        delta,
    })
}

/// Generates a *revision chain*: `len` scenarios sharing one
/// implementation, whose specs accumulate mutations — revision `i+1`'s
/// spec is revision `i`'s spec with fresh mutations applied.
///
/// This is the incremental-ECO workload shape (DESIGN.md §11): submitting
/// the chain as consecutive jobs against one shared cache exercises
/// cross-job reuse, because every revision re-presents the same
/// implementation cones. Deterministic in `(seed, config, len)`.
///
/// # Errors
///
/// Same as [`generate`].
pub fn generate_chain(
    seed: u64,
    config: &ScenarioConfig,
    len: usize,
) -> Result<Vec<Scenario>, FuzzError> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xEC0_C4A1);
    let params = CaseParams {
        id: (seed & 0xffff) as u32,
        name: "fuzz-chain",
        seed: rng.gen(),
        input_words: range(&mut rng, config.input_words),
        width: range(&mut rng, (config.width.0 as usize, config.width.1 as usize)) as u32,
        logic_signals: range(&mut rng, config.logic_signals),
        output_words: range(&mut rng, config.output_words),
        revisions: Vec::new(),
        heavy_optimization: config.heavy_optimization,
        aggressive_optimization: false,
    };
    let implementation = build_base(&params)?;
    let mut working = implementation.clone();
    let mut chain = Vec::with_capacity(len);
    for _ in 0..len {
        let count = range(&mut rng, config.mutations);
        let delta = mutate_n(&mut working, &mut rng, count)?;
        working.sweep();
        working.check_well_formed()?;
        chain.push(Scenario {
            seed,
            implementation: implementation.clone(),
            spec: working.clone(),
            delta,
        });
    }
    Ok(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::write_blif;

    #[test]
    fn generation_is_deterministic() {
        let config = ScenarioConfig::default();
        let a = generate(11, &config).unwrap();
        let b = generate(11, &config).unwrap();
        assert_eq!(write_blif(&a.implementation), write_blif(&b.implementation));
        assert_eq!(write_blif(&a.spec), write_blif(&b.spec));
        assert_eq!(a.delta.len(), b.delta.len());
    }

    #[test]
    fn scenarios_share_input_labels_and_output_names() {
        let config = ScenarioConfig::default();
        for seed in 0..20 {
            let s = generate(seed, &config).unwrap();
            assert!(!s.delta.is_empty(), "seed {seed}: no mutation applied");
            for &id in s.spec.inputs() {
                let label = s.spec.node(id).name().unwrap();
                assert!(
                    s.implementation.input_by_name(label).is_some(),
                    "seed {seed}: spec input {label} missing from implementation"
                );
            }
            for port in s.spec.outputs() {
                assert!(
                    s.implementation.output_by_name(port.name()).is_some(),
                    "seed {seed}: spec output {} missing from implementation",
                    port.name()
                );
            }
        }
    }

    #[test]
    fn chains_share_the_implementation_and_accumulate_mutations() {
        let config = ScenarioConfig::default();
        let chain = generate_chain(5, &config, 4).unwrap();
        assert_eq!(chain.len(), 4);
        let impl_text = write_blif(&chain[0].implementation);
        for revision in &chain {
            assert_eq!(
                write_blif(&revision.implementation),
                impl_text,
                "every revision re-presents the same implementation"
            );
            assert!(!revision.delta.is_empty());
            revision.spec.check_well_formed().unwrap();
        }
        // Determinism: regeneration is byte-identical.
        let again = generate_chain(5, &config, 4).unwrap();
        for (a, b) in chain.iter().zip(&again) {
            assert_eq!(write_blif(&a.spec), write_blif(&b.spec));
        }
        // Consecutive revisions differ (mutations accumulated).
        assert_ne!(write_blif(&chain[0].spec), write_blif(&chain[1].spec));
    }

    #[test]
    fn implementation_is_left_unmutated() {
        let config = ScenarioConfig::default();
        let s = generate(3, &config).unwrap();
        let params_twin = generate(3, &config).unwrap();
        // Re-generation reproduces the implementation: the mutation pass
        // touched only the spec clone.
        assert_eq!(
            write_blif(&s.implementation),
            write_blif(&params_twin.implementation)
        );
        s.implementation.check_well_formed().unwrap();
        s.spec.check_well_formed().unwrap();
    }
}
