//! Equivalence oracles and cross-oracle conformance checking.
//!
//! Each oracle answers, independently of the others, "are these two
//! circuits equal on this output pair?" with a three-valued
//! [`Verdict`]. Differential fuzzing runs all oracles on the same pair and
//! flags every disagreement: a definite verdict contradicting another
//! definite verdict, or a [`Verdict::Different`] whose witness does not
//! actually distinguish the circuits. `Unknown` (resource-bounded) agrees
//! with everything.

use std::collections::HashMap;

use eco_bdd::{Bdd, BddError, BddManager};
use eco_netlist::{sim, topo, Circuit, GateKind, NetId};
use eco_sat::cec::{assist_equivalences, CecOptions};
use eco_sat::tseitin::{encode_pairs, model_inputs};
use eco_sat::{SolveResult, Solver};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::FuzzError;

/// Result of one oracle on one output pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The outputs are proven equal.
    Equivalent,
    /// The outputs differ on the contained witness (an input assignment in
    /// the implementation's primary-input order).
    Different(Vec<bool>),
    /// The oracle exhausted its resource budget without an answer.
    Unknown,
}

impl Verdict {
    /// Short label used in disagreement reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Equivalent => "equivalent",
            Verdict::Different(_) => "different",
            Verdict::Unknown => "unknown",
        }
    }
}

/// One matched output pair between implementation and spec.
#[derive(Debug, Clone)]
pub struct OutputPairMap {
    /// The shared port label.
    pub name: String,
    /// Port index in the implementation.
    pub impl_index: usize,
    /// Port index in the spec.
    pub spec_index: usize,
}

/// Label-based port correspondence between an implementation and a spec.
#[derive(Debug, Clone)]
pub struct PortMap {
    /// For each spec input position, the implementation input position with
    /// the same label.
    pub impl_pos_of_spec: Vec<usize>,
    /// Output pairs, in implementation port order.
    pub pairs: Vec<OutputPairMap>,
}

impl PortMap {
    /// Projects an implementation-ordered witness onto the spec's inputs.
    pub fn spec_assignment(&self, witness: &[bool]) -> Vec<bool> {
        self.impl_pos_of_spec.iter().map(|&p| witness[p]).collect()
    }
}

/// Builds the port correspondence for an implementation/spec pair.
///
/// # Errors
///
/// [`FuzzError::PortMismatch`] when a spec input label is absent from the
/// implementation or the two output-name sets differ.
pub fn port_map(implementation: &Circuit, spec: &Circuit) -> Result<PortMap, FuzzError> {
    let mut impl_pos: HashMap<&str, usize> = HashMap::new();
    for (pos, &id) in implementation.inputs().iter().enumerate() {
        impl_pos.insert(implementation.node(id).name().unwrap_or(""), pos);
    }
    let mut impl_pos_of_spec = Vec::with_capacity(spec.num_inputs());
    for &id in spec.inputs() {
        let label = spec.node(id).name().unwrap_or("");
        match impl_pos.get(label) {
            Some(&p) => impl_pos_of_spec.push(p),
            None => {
                return Err(FuzzError::PortMismatch(format!(
                    "spec input {label:?} has no implementation counterpart"
                )))
            }
        }
    }
    if implementation.num_outputs() != spec.num_outputs() {
        return Err(FuzzError::PortMismatch(format!(
            "output count {} vs {}",
            implementation.num_outputs(),
            spec.num_outputs()
        )));
    }
    let mut pairs = Vec::with_capacity(implementation.num_outputs());
    for (impl_index, port) in implementation.outputs().iter().enumerate() {
        match spec.output_by_name(port.name()) {
            Some(spec_index) => pairs.push(OutputPairMap {
                name: port.name().to_string(),
                impl_index,
                spec_index: spec_index as usize,
            }),
            None => {
                return Err(FuzzError::PortMismatch(format!(
                    "implementation output {:?} missing from spec",
                    port.name()
                )))
            }
        }
    }
    Ok(PortMap {
        impl_pos_of_spec,
        pairs,
    })
}

/// An equivalence oracle: one verdict per output pair of the [`PortMap`].
pub trait Oracle {
    /// Short stable name used in reports.
    fn name(&self) -> &str;

    /// Checks every output pair of `map`.
    ///
    /// # Errors
    ///
    /// Infrastructure failures only (ill-formed circuits); resource
    /// exhaustion is reported as [`Verdict::Unknown`], not as an error.
    fn check_all(
        &mut self,
        implementation: &Circuit,
        spec: &Circuit,
        map: &PortMap,
    ) -> Result<Vec<Verdict>, FuzzError>;
}

// ---------------------------------------------------------------------
// Simulation oracle
// ---------------------------------------------------------------------

/// Bit-parallel simulation oracle.
///
/// Exhaustive (and therefore definitive) up to
/// [`exhaustive_limit`](SimOracle::exhaustive_limit) primary inputs; beyond
/// that it samples random blocks and can only answer `Different` or
/// `Unknown`.
#[derive(Debug, Clone)]
pub struct SimOracle {
    /// Maximum input count for exhaustive enumeration.
    pub exhaustive_limit: u32,
    /// Number of 64-pattern random blocks when not exhaustive.
    pub random_blocks: usize,
    /// Seed for the random blocks.
    pub seed: u64,
}

impl Default for SimOracle {
    fn default() -> Self {
        SimOracle {
            exhaustive_limit: 10,
            random_blocks: 16,
            seed: 0x51D,
        }
    }
}

impl SimOracle {
    fn compare_block(
        implementation: &Circuit,
        spec: &Circuit,
        map: &PortMap,
        impl_patterns: &[u64],
        valid: u32,
        verdicts: &mut [Option<Verdict>],
    ) -> Result<(), FuzzError> {
        let spec_patterns: Vec<u64> = map
            .impl_pos_of_spec
            .iter()
            .map(|&p| impl_patterns[p])
            .collect();
        let iw = sim::simulate64(implementation, impl_patterns)?;
        let sw = sim::simulate64(spec, &spec_patterns)?;
        let mask = if valid == 64 {
            !0u64
        } else {
            (1u64 << valid) - 1
        };
        for (k, pair) in map.pairs.iter().enumerate() {
            if verdicts[k].is_some() {
                continue;
            }
            let a = iw[implementation.outputs()[pair.impl_index].net().index()];
            let b = sw[spec.outputs()[pair.spec_index].net().index()];
            let diff = (a ^ b) & mask;
            if diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                let witness: Vec<bool> =
                    impl_patterns.iter().map(|&w| (w >> bit) & 1 == 1).collect();
                verdicts[k] = Some(Verdict::Different(witness));
            }
        }
        Ok(())
    }
}

impl Oracle for SimOracle {
    fn name(&self) -> &str {
        "sim"
    }

    fn check_all(
        &mut self,
        implementation: &Circuit,
        spec: &Circuit,
        map: &PortMap,
    ) -> Result<Vec<Verdict>, FuzzError> {
        let n = implementation.num_inputs();
        let mut verdicts: Vec<Option<Verdict>> = vec![None; map.pairs.len()];
        let exhaustive = (n as u32) <= self.exhaustive_limit;
        if exhaustive {
            let total: u64 = 1u64 << n;
            let mut base = 0u64;
            while base < total {
                let valid = (total - base).min(64) as u32;
                let patterns: Vec<u64> = (0..n)
                    .map(|i| {
                        let mut w = 0u64;
                        for j in 0..valid as u64 {
                            if ((base + j) >> i) & 1 == 1 {
                                w |= 1 << j;
                            }
                        }
                        w
                    })
                    .collect();
                Self::compare_block(implementation, spec, map, &patterns, valid, &mut verdicts)?;
                if verdicts.iter().all(|v| v.is_some()) {
                    break;
                }
                base += 64;
            }
        } else {
            let mut rng = SmallRng::seed_from_u64(self.seed);
            for _ in 0..self.random_blocks {
                let patterns: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
                Self::compare_block(implementation, spec, map, &patterns, 64, &mut verdicts)?;
                if verdicts.iter().all(|v| v.is_some()) {
                    break;
                }
            }
        }
        let fallback = if exhaustive {
            Verdict::Equivalent
        } else {
            Verdict::Unknown
        };
        Ok(verdicts
            .into_iter()
            .map(|v| v.unwrap_or_else(|| fallback.clone()))
            .collect())
    }
}

// ---------------------------------------------------------------------
// SAT oracle
// ---------------------------------------------------------------------

/// SAT-based combinational equivalence oracle over a shared-input miter.
#[derive(Debug, Clone)]
pub struct SatOracle {
    /// Conflict budget per output query; `None` is unbounded.
    pub conflict_budget: Option<u64>,
    /// Run the fraiging-lite internal-equivalence pass before the output
    /// queries (exercises `sat::cec` differentially).
    pub assist: bool,
    /// Seed for the assistance pass's simulation.
    pub seed: u64,
}

impl Default for SatOracle {
    fn default() -> Self {
        SatOracle {
            conflict_budget: Some(200_000),
            assist: false,
            seed: 0x5A7,
        }
    }
}

impl Oracle for SatOracle {
    fn name(&self) -> &str {
        if self.assist {
            "sat+cec"
        } else {
            "sat"
        }
    }

    fn check_all(
        &mut self,
        implementation: &Circuit,
        spec: &Circuit,
        map: &PortMap,
    ) -> Result<Vec<Verdict>, FuzzError> {
        let mut solver = Solver::new();
        let pairs: Vec<(NetId, NetId)> = map
            .pairs
            .iter()
            .map(|p| {
                (
                    implementation.outputs()[p.impl_index].net(),
                    spec.outputs()[p.spec_index].net(),
                )
            })
            .collect();
        let miter = encode_pairs(&mut solver, implementation, spec, &pairs)?;
        if self.assist {
            let options = CecOptions {
                sim_blocks: 2,
                pair_budget: 1_000,
                max_pairs: 256,
                seed: self.seed,
            };
            assist_equivalences(
                &mut solver,
                implementation,
                spec,
                &miter.left,
                &miter.right,
                &options,
            )?;
        }
        solver.set_conflict_budget(self.conflict_budget);
        let mut verdicts = Vec::with_capacity(map.pairs.len());
        for &d in &miter.diff_lits {
            let verdict = match solver.solve(&[d]) {
                SolveResult::Sat => {
                    Verdict::Different(model_inputs(&solver, &miter, implementation))
                }
                SolveResult::Unsat => Verdict::Equivalent,
                _ => Verdict::Unknown,
            };
            verdicts.push(verdict);
        }
        Ok(verdicts)
    }
}

// ---------------------------------------------------------------------
// BDD oracle
// ---------------------------------------------------------------------

/// Canonical-form equivalence oracle: both circuits are compiled to BDDs
/// over shared input variables, where equivalence is handle equality.
#[derive(Debug, Clone)]
pub struct BddOracle {
    /// Unique-table node limit; exceeding it yields [`Verdict::Unknown`].
    pub node_limit: usize,
}

impl Default for BddOracle {
    fn default() -> Self {
        BddOracle {
            node_limit: 200_000,
        }
    }
}

/// Compiles every net of `circuit` to a BDD, inputs taken from `input_fns`
/// (indexed by primary-input position).
fn circuit_bdds(
    m: &mut BddManager,
    circuit: &Circuit,
    input_fns: &[Bdd],
) -> Result<Vec<Bdd>, BddError> {
    let order = topo::topo_order(circuit).expect("oracle input is well-formed");
    let mut fns = vec![m.zero(); circuit.num_nodes()];
    for (pos, &id) in circuit.inputs().iter().enumerate() {
        fns[id.index()] = input_fns[pos];
    }
    for id in order {
        let node = circuit.node(id);
        let f = match node.kind() {
            GateKind::Input => continue,
            GateKind::Const0 => m.zero(),
            GateKind::Const1 => m.one(),
            GateKind::Buf => fns[node.fanins()[0].index()],
            GateKind::Not => m.not(fns[node.fanins()[0].index()])?,
            GateKind::Mux => {
                let sel = fns[node.fanins()[0].index()];
                let d0 = fns[node.fanins()[1].index()];
                let d1 = fns[node.fanins()[2].index()];
                m.ite(sel, d1, d0)?
            }
            kind => {
                let mut acc = fns[node.fanins()[0].index()];
                for f in &node.fanins()[1..] {
                    let g = fns[f.index()];
                    acc = match kind {
                        GateKind::And | GateKind::Nand => m.and(acc, g)?,
                        GateKind::Or | GateKind::Nor => m.or(acc, g)?,
                        GateKind::Xor | GateKind::Xnor => m.xor(acc, g)?,
                        _ => unreachable!("n-ary kinds only"),
                    };
                }
                match kind {
                    GateKind::Nand | GateKind::Nor | GateKind::Xnor => m.not(acc)?,
                    _ => acc,
                }
            }
        };
        fns[id.index()] = f;
    }
    Ok(fns)
}

/// Extracts one satisfying assignment of a non-zero BDD by greedy descent.
fn bdd_witness(m: &BddManager, mut f: Bdd, num_vars: usize) -> Vec<bool> {
    let mut assign = vec![false; num_vars];
    while !m.is_const(f) {
        let v = m.root_var(f).expect("non-const node has a root var") as usize;
        if m.high(f) != m.zero() {
            assign[v] = true;
            f = m.high(f);
        } else {
            f = m.low(f);
        }
    }
    assign
}

impl Oracle for BddOracle {
    fn name(&self) -> &str {
        "bdd"
    }

    fn check_all(
        &mut self,
        implementation: &Circuit,
        spec: &Circuit,
        map: &PortMap,
    ) -> Result<Vec<Verdict>, FuzzError> {
        let n = implementation.num_inputs();
        let unknowns = vec![Verdict::Unknown; map.pairs.len()];
        let mut m = BddManager::with_node_limit(self.node_limit);
        let impl_vars: Vec<Bdd> = (0..n).map(|i| m.var(i as u32)).collect();
        let spec_vars: Vec<Bdd> = map.impl_pos_of_spec.iter().map(|&p| impl_vars[p]).collect();
        let impl_fns = match circuit_bdds(&mut m, implementation, &impl_vars) {
            Ok(f) => f,
            Err(_) => return Ok(unknowns),
        };
        let spec_fns = match circuit_bdds(&mut m, spec, &spec_vars) {
            Ok(f) => f,
            Err(_) => return Ok(unknowns),
        };
        let mut verdicts = Vec::with_capacity(map.pairs.len());
        for pair in &map.pairs {
            let a = impl_fns[implementation.outputs()[pair.impl_index].net().index()];
            let b = spec_fns[spec.outputs()[pair.spec_index].net().index()];
            let verdict = match m.xor(a, b) {
                Ok(d) if d == m.zero() => Verdict::Equivalent,
                Ok(d) => Verdict::Different(bdd_witness(&m, d, n)),
                Err(_) => Verdict::Unknown,
            };
            verdicts.push(verdict);
        }
        Ok(verdicts)
    }
}

// ---------------------------------------------------------------------
// Cross-checking
// ---------------------------------------------------------------------

/// One detected conformance violation.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Which check fired, e.g. `oracle:sim-vs-sat` or `witness:bdd`.
    pub check: String,
    /// The output the violation concerns, when output-local.
    pub output: Option<String>,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Disagreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.output {
            Some(o) => write!(f, "[{}] output {o:?}: {}", self.check, self.detail),
            None => write!(f, "[{}] {}", self.check, self.detail),
        }
    }
}

fn render_witness(witness: &[bool]) -> String {
    witness.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Cross-checks named per-pair verdicts from several oracles.
///
/// Two properties are enforced per output pair:
///
/// 1. every `Different` witness actually distinguishes the circuits under
///    concrete [`Circuit::eval`] (otherwise the oracle fabricated a
///    counterexample), and
/// 2. no oracle answers `Equivalent` while another answers `Different`
///    with a *validated* witness. `Unknown` is compatible with everything.
pub fn cross_check_oracles(
    implementation: &Circuit,
    spec: &Circuit,
    map: &PortMap,
    named: &[(String, Vec<Verdict>)],
) -> Vec<Disagreement> {
    let mut out = Vec::new();
    for (k, pair) in map.pairs.iter().enumerate() {
        // Validate witnesses first; invalid ones are excluded from the
        // pairwise comparison (they are already reported on their own).
        let mut validated: Vec<(&str, &Verdict)> = Vec::new();
        for (name, verdicts) in named {
            let v = &verdicts[k];
            if let Verdict::Different(witness) = v {
                let iv = implementation
                    .eval(witness)
                    .map(|o| o[pair.impl_index])
                    .ok();
                let sv = spec
                    .eval(&map.spec_assignment(witness))
                    .map(|o| o[pair.spec_index])
                    .ok();
                match (iv, sv) {
                    (Some(a), Some(b)) if a != b => validated.push((name, v)),
                    _ => out.push(Disagreement {
                        check: format!("witness:{name}"),
                        output: Some(pair.name.clone()),
                        detail: format!(
                            "witness {} does not distinguish the pair",
                            render_witness(witness)
                        ),
                    }),
                }
            } else {
                validated.push((name, v));
            }
        }
        for (i, (na, va)) in validated.iter().enumerate() {
            for (nb, vb) in &validated[i + 1..] {
                let conflict = matches!(
                    (va, vb),
                    (Verdict::Equivalent, Verdict::Different(_))
                        | (Verdict::Different(_), Verdict::Equivalent)
                );
                if conflict {
                    out.push(Disagreement {
                        check: format!("oracle:{na}-vs-{nb}"),
                        output: Some(pair.name.clone()),
                        detail: format!("{na}={} but {nb}={}", va.label(), vb.label()),
                    });
                }
            }
        }
    }
    out
}

/// Runs the three netlist-level oracles (simulation, SAT, BDD) on a pair
/// and returns every cross-oracle disagreement.
///
/// This is the predicate the shrinker and the `replay` CLI use; the full
/// pipeline-level conformance check (rectify determinism, cache replay)
/// lives in `syseco::fuzz`.
///
/// # Errors
///
/// [`FuzzError::PortMismatch`] for incompatible pairs and infrastructure
/// errors from the oracles.
pub fn check_conformance(
    implementation: &Circuit,
    spec: &Circuit,
    seed: u64,
) -> Result<Vec<Disagreement>, FuzzError> {
    let map = port_map(implementation, spec)?;
    let mut oracles: Vec<Box<dyn Oracle>> = vec![
        Box::new(SimOracle {
            seed,
            ..SimOracle::default()
        }),
        Box::new(SatOracle {
            assist: true,
            seed,
            ..SatOracle::default()
        }),
        Box::<BddOracle>::default(),
    ];
    let mut named = Vec::with_capacity(oracles.len());
    for oracle in &mut oracles {
        let verdicts = oracle.check_all(implementation, spec, &map)?;
        named.push((oracle.name().to_string(), verdicts));
    }
    Ok(cross_check_oracles(implementation, spec, &map, &named))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(flip: bool) -> (Circuit, Circuit) {
        let mut a = Circuit::new("impl");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let z = a.add_input("z");
        let g1 = a.add_gate(GateKind::And, &[x, y]).unwrap();
        let g2 = a.add_gate(GateKind::Or, &[g1, z]).unwrap();
        let g3 = a.add_gate(GateKind::Xor, &[g1, z]).unwrap();
        a.add_output("o1", g2);
        a.add_output("o2", g3);

        let mut b = Circuit::new("spec");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let z = b.add_input("z");
        // De Morgan re-expression of o1; o2 copied or (when flip) broken.
        let nx = b.add_gate(GateKind::Not, &[x]).unwrap();
        let ny = b.add_gate(GateKind::Not, &[y]).unwrap();
        let nz = b.add_gate(GateKind::Not, &[z]).unwrap();
        // ¬(x∧y) = ¬x ∨ ¬y, then (x∧y)∨z = ¬(¬(x∧y) ∧ ¬z).
        let na = b.add_gate(GateKind::Or, &[nx, ny]).unwrap();
        let o1 = b.add_gate(GateKind::Nand, &[na, nz]).unwrap();
        let g1 = b.add_gate(GateKind::And, &[x, y]).unwrap();
        let kind = if flip { GateKind::Xnor } else { GateKind::Xor };
        let o2 = b.add_gate(kind, &[g1, z]).unwrap();
        b.add_output("o1", o1);
        b.add_output("o2", o2);
        (a, b)
    }

    fn oracles(seed: u64) -> Vec<Box<dyn Oracle>> {
        vec![
            Box::new(SimOracle {
                seed,
                ..SimOracle::default()
            }),
            Box::new(SatOracle::default()),
            Box::new(SatOracle {
                assist: true,
                ..SatOracle::default()
            }),
            Box::<BddOracle>::default(),
        ]
    }

    #[test]
    fn all_oracles_prove_equivalent_pair() {
        let (a, b) = pair(false);
        let map = port_map(&a, &b).unwrap();
        for mut oracle in oracles(1) {
            let verdicts = oracle.check_all(&a, &b, &map).unwrap();
            assert_eq!(
                verdicts,
                vec![Verdict::Equivalent; 2],
                "oracle {}",
                oracle.name()
            );
        }
    }

    #[test]
    fn all_oracles_find_the_flip_with_valid_witnesses() {
        let (a, b) = pair(true);
        let map = port_map(&a, &b).unwrap();
        for mut oracle in oracles(2) {
            let verdicts = oracle.check_all(&a, &b, &map).unwrap();
            assert_eq!(verdicts[0], Verdict::Equivalent, "oracle {}", oracle.name());
            let Verdict::Different(witness) = &verdicts[1] else {
                panic!("oracle {} missed the flipped output", oracle.name());
            };
            let iv = a.eval(witness).unwrap()[1];
            let sv = b.eval(&map.spec_assignment(witness)).unwrap()[1];
            assert_ne!(iv, sv, "oracle {} returned a bogus witness", oracle.name());
        }
    }

    #[test]
    fn conformance_clean_on_both_pairs() {
        for flip in [false, true] {
            let (a, b) = pair(flip);
            let disagreements = check_conformance(&a, &b, 3).unwrap();
            assert!(disagreements.is_empty(), "flip={flip}: {disagreements:?}");
        }
    }

    #[test]
    fn cross_check_flags_conflicting_verdicts() {
        let (a, b) = pair(true);
        let map = port_map(&a, &b).unwrap();
        let honest = SimOracle::default().check_all(&a, &b, &map).unwrap();
        // A lying oracle claims the flipped output is equivalent.
        let lying = vec![Verdict::Equivalent, Verdict::Equivalent];
        let named = vec![("sim".to_string(), honest), ("liar".to_string(), lying)];
        let out = cross_check_oracles(&a, &b, &map, &named);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].check, "oracle:sim-vs-liar");
        assert_eq!(out[0].output.as_deref(), Some("o2"));
    }

    #[test]
    fn cross_check_flags_bogus_witness() {
        let (a, b) = pair(false); // actually equivalent
        let map = port_map(&a, &b).unwrap();
        let bogus = vec![
            Verdict::Different(vec![true, true, false]),
            Verdict::Equivalent,
        ];
        let named = vec![("liar".to_string(), bogus)];
        let out = cross_check_oracles(&a, &b, &map, &named);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].check, "witness:liar");
    }

    #[test]
    fn port_map_rejects_mismatches() {
        let (a, _) = pair(false);
        let mut c = Circuit::new("other");
        let q = c.add_input("q");
        c.add_output("o1", q);
        assert!(matches!(port_map(&a, &c), Err(FuzzError::PortMismatch(_))));
        let mut d = Circuit::new("short");
        let x = d.add_input("x");
        d.add_output("o1", x);
        assert!(matches!(port_map(&a, &d), Err(FuzzError::PortMismatch(_))));
    }

    #[test]
    fn sim_oracle_random_mode_reports_unknown_on_equivalence() {
        let (a, b) = pair(false);
        let map = port_map(&a, &b).unwrap();
        let mut oracle = SimOracle {
            exhaustive_limit: 1, // force random mode on 3 inputs
            random_blocks: 4,
            seed: 9,
        };
        let verdicts = oracle.check_all(&a, &b, &map).unwrap();
        assert_eq!(verdicts, vec![Verdict::Unknown; 2]);
    }
}
