//! Semantics-changing netlist mutations.
//!
//! Each mutation derives a *revised specification* from a base circuit by a
//! localized functional edit, mirroring the way real ECOs change a handful
//! of gates. Because the implementation is the unmutated base, every
//! generated pair is rectifiable by construction and the applied
//! [`MutationRecord`]s are the ground-truth delta.

use std::collections::HashMap;

use eco_netlist::{topo, Circuit, GateKind, NetId, NodeId, Pin};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::FuzzError;

/// Maximum cone size duplicated by [`MutationKind::ConeDupEdit`].
const MAX_DUP_CONE: usize = 12;

/// The kinds of semantics-changing rewrites the fuzzer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Replace a gate's logic operation, keeping its fanins.
    GateFlip,
    /// Swap two fanins of an order-sensitive gate (mux branches).
    PinSwap,
    /// Duplicate a small cone, flip one gate inside the copy, and rewire a
    /// consumer of the original root onto the edited copy.
    ConeDupEdit,
    /// Rewire a sink pin to a constant.
    ConstInject,
}

impl std::fmt::Display for MutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MutationKind::GateFlip => "gate-flip",
            MutationKind::PinSwap => "pin-swap",
            MutationKind::ConeDupEdit => "cone-dup-edit",
            MutationKind::ConstInject => "const-inject",
        };
        f.write_str(s)
    }
}

/// One applied mutation: the ground-truth delta entry.
#[derive(Debug, Clone)]
pub struct MutationRecord {
    /// Which rewrite was applied.
    pub kind: MutationKind,
    /// The node the rewrite anchored on (the flipped gate, the swapped mux,
    /// the duplicated root, or the consumer of an injected constant).
    pub node: NodeId,
    /// Human-readable description of the edit.
    pub detail: String,
}

/// Replacement operations tried by [`MutationKind::GateFlip`]; every entry
/// accepts the same fanin count as the key.
fn flip_targets(kind: GateKind) -> &'static [GateKind] {
    match kind {
        GateKind::And => &[GateKind::Or, GateKind::Nand, GateKind::Xor],
        GateKind::Or => &[GateKind::And, GateKind::Nor, GateKind::Xor],
        GateKind::Nand => &[GateKind::Nor, GateKind::And, GateKind::Xnor],
        GateKind::Nor => &[GateKind::Nand, GateKind::Or, GateKind::Xnor],
        GateKind::Xor => &[GateKind::Xnor, GateKind::Or],
        GateKind::Xnor => &[GateKind::Xor, GateKind::And],
        GateKind::Not => &[GateKind::Buf],
        GateKind::Buf => &[GateKind::Not],
        // And/Or/Xor accept the mux's three fanins.
        GateKind::Mux => &[GateKind::And, GateKind::Or, GateKind::Xor],
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => &[],
    }
}

/// Live gate nodes eligible as mutation anchors (no inputs, no constants).
fn gate_nodes(c: &Circuit) -> Vec<NodeId> {
    c.iter_live()
        .filter(|&id| {
            let k = c.node(id).kind();
            k != GateKind::Input && !k.is_const()
        })
        .collect()
}

fn pick<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        items.get(rng.gen_range(0..items.len()))
    }
}

/// Applies one random mutation of `kind` to `c`; returns `None` when no
/// anchor for that kind exists in the circuit.
fn try_apply(c: &mut Circuit, rng: &mut SmallRng, kind: MutationKind) -> Option<MutationRecord> {
    match kind {
        MutationKind::GateFlip => {
            let cands: Vec<NodeId> = gate_nodes(c)
                .into_iter()
                .filter(|&id| !flip_targets(c.node(id).kind()).is_empty())
                .collect();
            let &node = pick(rng, &cands)?;
            let from = c.node(node).kind();
            let &to = pick(rng, flip_targets(from)).expect("filtered to non-empty");
            c.set_gate_kind(node, to).ok()?;
            Some(MutationRecord {
                kind,
                node,
                detail: format!("{from} -> {to} at n{}", node.index()),
            })
        }
        MutationKind::PinSwap => {
            let muxes: Vec<NodeId> = gate_nodes(c)
                .into_iter()
                .filter(|&id| c.node(id).kind() == GateKind::Mux)
                .collect();
            let &node = pick(rng, &muxes)?;
            let (a, b) = *pick(rng, &[(0u8, 1u8), (1, 2), (0, 2)]).expect("non-empty");
            c.swap_fanins(node, a, b).ok()?;
            Some(MutationRecord {
                kind,
                node,
                detail: format!("swap pins {a},{b} of mux n{}", node.index()),
            })
        }
        MutationKind::ConeDupEdit => {
            let fanouts = c.fanouts();
            let cands: Vec<NodeId> = gate_nodes(c)
                .into_iter()
                .filter(|&id| {
                    let net: NetId = id.into();
                    !fanouts[net.index()].is_empty()
                        && topo::cone_size(c, net) <= MAX_DUP_CONE
                        && !flip_targets(c.node(id).kind()).is_empty()
                })
                .collect();
            let &root = pick(rng, &cands)?;
            let root_net: NetId = root.into();
            let src = c.clone();
            let map = c.clone_cone(&src, &[root_net], &HashMap::new()).ok()?;
            // Flip one gate inside the duplicate. The cone root itself is
            // always flippable (filtered above), so candidates are non-empty.
            let mut editable: Vec<NodeId> = map
                .iter()
                .filter(|(&from, &to)| {
                    from != to && !flip_targets(src.node(from.source()).kind()).is_empty()
                })
                .map(|(_, &to)| to.source())
                .collect();
            // HashMap iteration order is per-instance; sort so the same rng
            // stream always edits the same gate.
            editable.sort_unstable_by_key(|id| id.index());
            let &edit = pick(rng, &editable)?;
            let from_kind = c.node(edit).kind();
            let &to_kind = pick(rng, flip_targets(from_kind)).expect("filtered to non-empty");
            c.set_gate_kind(edit, to_kind).ok()?;
            // Redirect one consumer of the original root onto the copy.
            let &sink = pick(rng, &fanouts[root_net.index()])?;
            c.rewire(sink, map[&root_net]).ok()?;
            Some(MutationRecord {
                kind,
                node: root,
                detail: format!(
                    "dup cone of n{} ({} nodes), {from_kind} -> {to_kind} inside copy",
                    root.index(),
                    topo::cone_size(&src, root_net),
                ),
            })
        }
        MutationKind::ConstInject => {
            let mut pins: Vec<Pin> = Vec::new();
            for id in gate_nodes(c) {
                for pos in 0..c.node(id).fanins().len() {
                    pins.push(Pin::gate(id, pos as u8));
                }
            }
            for index in 0..c.num_outputs() {
                pins.push(Pin::output(index as u32));
            }
            let &pin = pick(rng, &pins)?;
            let value = rng.gen_bool(0.5);
            let konst = c.constant(value);
            c.rewire(pin, konst).ok()?;
            let node = pin.node().unwrap_or_else(|| konst.source());
            Some(MutationRecord {
                kind,
                node,
                detail: format!("drive {pin:?} with const{}", u8::from(value)),
            })
        }
    }
}

/// Applies one random semantics-changing mutation, trying other kinds when
/// the sampled one has no anchor in `c`.
///
/// Returns `None` only when the circuit offers no mutable structure at all
/// (e.g. outputs wired straight to inputs with no gates and no ports).
pub fn apply_random_mutation(c: &mut Circuit, rng: &mut SmallRng) -> Option<MutationRecord> {
    const ORDER: [MutationKind; 4] = [
        MutationKind::GateFlip,
        MutationKind::PinSwap,
        MutationKind::ConeDupEdit,
        MutationKind::ConstInject,
    ];
    let start = rng.gen_range(0..ORDER.len());
    for i in 0..ORDER.len() {
        let kind = ORDER[(start + i) % ORDER.len()];
        if let Some(record) = try_apply(c, rng, kind) {
            return Some(record);
        }
    }
    None
}

/// Applies up to `count` random mutations and returns the ground-truth
/// delta. Stops early when the circuit has nothing left to mutate.
///
/// # Errors
///
/// [`FuzzError::Netlist`] when a mutation leaves the circuit ill-formed —
/// a bug in the mutation engine itself, surfaced instead of propagated
/// into the oracles.
pub fn mutate_n(
    c: &mut Circuit,
    rng: &mut SmallRng,
    count: usize,
) -> Result<Vec<MutationRecord>, FuzzError> {
    let mut delta = Vec::with_capacity(count);
    for _ in 0..count {
        match apply_random_mutation(c, rng) {
            Some(record) => delta.push(record),
            None => break,
        }
    }
    c.check_well_formed()?;
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::write_blif;
    use rand::SeedableRng;

    fn sample() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s = c.add_input("s");
        let g1 = c.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::And, &[g1, s]).unwrap();
        let g3 = c.add_gate(GateKind::Mux, &[s, g1, g2]).unwrap();
        c.add_output("y", g3);
        c.add_output("t", g2);
        c
    }

    #[test]
    fn every_kind_applies_on_sample() {
        for kind in [
            MutationKind::GateFlip,
            MutationKind::PinSwap,
            MutationKind::ConeDupEdit,
            MutationKind::ConstInject,
        ] {
            let mut c = sample();
            let mut rng = SmallRng::seed_from_u64(7);
            let rec = try_apply(&mut c, &mut rng, kind)
                .unwrap_or_else(|| panic!("{kind} found no anchor"));
            assert_eq!(rec.kind, kind);
            c.check_well_formed().unwrap();
        }
    }

    #[test]
    fn mutations_are_deterministic() {
        let run = |seed: u64| {
            let mut c = sample();
            let mut rng = SmallRng::seed_from_u64(seed);
            let delta = mutate_n(&mut c, &mut rng, 3).unwrap();
            (write_blif(&c), delta.len())
        };
        assert_eq!(run(42), run(42));
        // Different seeds explore different edits (statistically certain on
        // this sample).
        assert!(
            (0..8)
                .map(run)
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn mutated_circuits_stay_well_formed() {
        for seed in 0..50 {
            let mut c = sample();
            let mut rng = SmallRng::seed_from_u64(seed);
            let delta = mutate_n(&mut c, &mut rng, 4).unwrap();
            assert!(!delta.is_empty(), "seed {seed} applied nothing");
            c.sweep();
            c.check_well_formed().unwrap();
        }
    }

    #[test]
    fn gateless_circuit_yields_no_mutation_or_const() {
        // Output wired straight to an input: only const injection applies.
        let mut c = Circuit::new("wire");
        let a = c.add_input("a");
        c.add_output("y", a);
        let mut rng = SmallRng::seed_from_u64(1);
        let rec = apply_random_mutation(&mut c, &mut rng).unwrap();
        assert_eq!(rec.kind, MutationKind::ConstInject);
        c.check_well_formed().unwrap();
    }
}
