//! Error type shared by the fuzzing subsystem.

use std::error::Error;
use std::fmt;

use eco_netlist::{NetlistError, ParseBlifError};
use eco_workload::GeneratorError;

/// Errors produced by scenario generation, oracle evaluation, or repro
/// (de)serialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum FuzzError {
    /// A netlist operation failed.
    Netlist(NetlistError),
    /// The workload generator rejected the sampled parameters.
    Generator(GeneratorError),
    /// A circuit section of a repro file failed to parse.
    Blif(ParseBlifError),
    /// The implementation/spec pair has incompatible ports.
    PortMismatch(String),
    /// A `.eco-repro` file violated the format.
    Repro {
        /// 1-based line number of the violation.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for FuzzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzError::Netlist(e) => write!(f, "netlist error: {e}"),
            FuzzError::Generator(e) => write!(f, "generator error: {e}"),
            FuzzError::Blif(e) => write!(f, "blif error: {e}"),
            FuzzError::PortMismatch(msg) => write!(f, "port mismatch: {msg}"),
            FuzzError::Repro { line, reason } => {
                write!(f, "repro line {line}: {reason}")
            }
        }
    }
}

impl Error for FuzzError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FuzzError::Netlist(e) => Some(e),
            FuzzError::Generator(e) => Some(e),
            FuzzError::Blif(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for FuzzError {
    fn from(e: NetlistError) -> Self {
        FuzzError::Netlist(e)
    }
}

impl From<GeneratorError> for FuzzError {
    fn from(e: GeneratorError) -> Self {
        FuzzError::Generator(e)
    }
}

impl From<ParseBlifError> for FuzzError {
    fn from(e: ParseBlifError) -> Self {
        FuzzError::Blif(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let cases = [
            FuzzError::PortMismatch("x".into()),
            FuzzError::Repro {
                line: 3,
                reason: "bad".into(),
            },
            FuzzError::Netlist(NetlistError::UnknownNode(eco_netlist::NodeId::from_index(
                7,
            ))),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
