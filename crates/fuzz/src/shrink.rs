//! Greedy automatic shrinking of failing implementation/spec pairs.
//!
//! Given a pair on which a failing predicate holds (an oracle
//! disagreement, a broken patch, a determinism violation, ...), the
//! shrinker searches for a minimal pair that still fails, in the style of
//! delta debugging: first it drops whole output ports, then it replaces
//! individual gates by one of their fanins or a constant, re-running the
//! predicate after every candidate edit and keeping only edits that
//! preserve the failure. The result is the repro a human actually debugs.

use std::collections::HashMap;

use eco_netlist::{Circuit, GateKind, NetId, NodeId};

/// Number of live gates (inputs and constants excluded).
pub fn gate_count(c: &Circuit) -> usize {
    c.iter_live()
        .filter(|&id| {
            let k = c.node(id).kind();
            k != GateKind::Input && !k.is_const()
        })
        .count()
}

/// Result of a [`shrink_pair`] run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized implementation.
    pub implementation: Circuit,
    /// The minimized spec.
    pub spec: Circuit,
    /// Greedy passes executed.
    pub rounds: usize,
    /// Total predicate evaluations.
    pub predicate_calls: usize,
}

/// Rebuilds `c` without the output named `drop`, compacting away any logic
/// only that port used. Returns `None` when `drop` is the only output (a
/// repro must keep at least one) or the rebuild fails.
fn without_output(c: &Circuit, drop: &str) -> Option<Circuit> {
    if c.num_outputs() <= 1 || c.output_by_name(drop).is_none() {
        return None;
    }
    let mut out = Circuit::new(c.name());
    for &id in c.inputs() {
        out.add_input(c.node(id).name().unwrap_or(""));
    }
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for port in c.outputs() {
        if port.name() == drop {
            continue;
        }
        map = out.clone_cone(c, &[port.net()], &map).ok()?;
        out.add_output(port.name(), map[&port.net()]);
    }
    Some(out)
}

/// Produces a copy of `c` in which every consumer of gate `g` reads
/// `replacement` instead, with `g` then swept away. Returns `None` when a
/// rewire is rejected (it would create a cycle).
fn bypass_gate(c: &Circuit, g: NodeId, replacement: NetId) -> Option<Circuit> {
    let mut out = c.clone();
    let sinks = out.fanouts()[NetId::from(g).index()].clone();
    if sinks.is_empty() {
        return None;
    }
    for pin in sinks {
        out.rewire(pin, replacement).ok()?;
    }
    out.sweep();
    Some(out)
}

/// Candidate replacement nets for gate `g`: each distinct fanin, then the
/// two constants.
fn replacements(c: &mut Circuit, g: NodeId) -> Vec<NetId> {
    let mut nets: Vec<NetId> = Vec::new();
    for &f in c.node(g).fanins().to_vec().iter() {
        if !nets.contains(&f) {
            nets.push(f);
        }
    }
    nets.push(c.constant(false));
    nets.push(c.constant(true));
    nets
}

/// Greedily minimizes a failing pair.
///
/// `failing` must return `true` on the initial pair (otherwise the pair is
/// returned unchanged); it is then re-evaluated on every candidate
/// reduction, and a reduction is kept only when the failure persists. The
/// search stops at a fixpoint or after `max_calls` predicate evaluations.
///
/// The predicate must be deterministic; a flaky predicate makes the
/// greedy search thrash but cannot make the result invalid, because the
/// returned pair is always one on which `failing` returned `true`.
pub fn shrink_pair<F>(
    implementation: &Circuit,
    spec: &Circuit,
    mut failing: F,
    max_calls: usize,
) -> ShrinkOutcome
where
    F: FnMut(&Circuit, &Circuit) -> bool,
{
    let mut cur_impl = implementation.clone();
    let mut cur_spec = spec.clone();
    let mut calls = 1usize;
    if !failing(&cur_impl, &cur_spec) {
        return ShrinkOutcome {
            implementation: cur_impl,
            spec: cur_spec,
            rounds: 0,
            predicate_calls: calls,
        };
    }
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;

        // Phase 1: drop output ports shared by both sides.
        let mut dropping = true;
        while dropping && calls < max_calls {
            dropping = false;
            let names: Vec<String> = cur_impl
                .outputs()
                .iter()
                .map(|p| p.name().to_string())
                .collect();
            for name in names {
                if calls >= max_calls {
                    break;
                }
                let (Some(i2), Some(s2)) = (
                    without_output(&cur_impl, &name),
                    without_output(&cur_spec, &name),
                ) else {
                    continue;
                };
                calls += 1;
                if failing(&i2, &s2) {
                    cur_impl = i2;
                    cur_spec = s2;
                    changed = true;
                    dropping = true;
                    break;
                }
            }
        }

        // Phase 2: bypass individual gates on either side.
        'sides: for side in 0..2 {
            let mut simplifying = true;
            while simplifying {
                simplifying = false;
                let target = if side == 0 { &cur_impl } else { &cur_spec };
                let gates: Vec<NodeId> = target
                    .iter_live()
                    .filter(|&id| {
                        let k = target.node(id).kind();
                        k != GateKind::Input && !k.is_const()
                    })
                    .collect();
                for g in gates {
                    if calls >= max_calls {
                        break 'sides;
                    }
                    let mut scratch = target.clone();
                    let mut accepted = None;
                    for r in replacements(&mut scratch, g) {
                        if calls >= max_calls {
                            break;
                        }
                        let Some(cand) = bypass_gate(&scratch, g, r) else {
                            continue;
                        };
                        calls += 1;
                        let ok = if side == 0 {
                            failing(&cand, &cur_spec)
                        } else {
                            failing(&cur_impl, &cand)
                        };
                        if ok {
                            accepted = Some(cand);
                            break;
                        }
                    }
                    if let Some(cand) = accepted {
                        if side == 0 {
                            cur_impl = cand;
                        } else {
                            cur_spec = cand;
                        }
                        changed = true;
                        simplifying = true;
                        break;
                    }
                }
            }
        }

        if !changed || calls >= max_calls {
            break;
        }
    }
    ShrinkOutcome {
        implementation: cur_impl,
        spec: cur_spec,
        rounds,
        predicate_calls: calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{port_map, Oracle, SimOracle, Verdict};

    /// A deliberately noisy pair: `o_bad` differs (And vs Or), the other
    /// outputs are equivalent padding that shrinking should strip.
    fn noisy_pair() -> (Circuit, Circuit) {
        let build = |bad_is_or: bool| {
            let mut c = Circuit::new("n");
            let a = c.add_input("a");
            let b = c.add_input("b");
            let d = c.add_input("d");
            let x1 = c.add_gate(GateKind::Xor, &[a, b]).unwrap();
            let x2 = c.add_gate(GateKind::Mux, &[d, x1, a]).unwrap();
            let x3 = c.add_gate(GateKind::Nor, &[x2, b]).unwrap();
            let bad_kind = if bad_is_or {
                GateKind::Or
            } else {
                GateKind::And
            };
            let bad = c.add_gate(bad_kind, &[a, b]).unwrap();
            let x4 = c.add_gate(GateKind::Xnor, &[x3, d]).unwrap();
            c.add_output("o_pad1", x3);
            c.add_output("o_bad", bad);
            c.add_output("o_pad2", x4);
            c
        };
        (build(false), build(true))
    }

    fn sim_disagrees(i: &Circuit, s: &Circuit) -> bool {
        let Ok(map) = port_map(i, s) else {
            return false;
        };
        let Ok(verdicts) = SimOracle::default().check_all(i, s, &map) else {
            return false;
        };
        verdicts.iter().any(|v| matches!(v, Verdict::Different(_)))
    }

    #[test]
    fn shrinks_to_the_single_differing_gate() {
        let (a, b) = noisy_pair();
        let outcome = shrink_pair(&a, &b, sim_disagrees, 500);
        assert_eq!(outcome.implementation.num_outputs(), 1);
        assert_eq!(outcome.spec.num_outputs(), 1);
        assert_eq!(outcome.implementation.outputs()[0].name(), "o_bad");
        assert!(
            gate_count(&outcome.implementation) <= 1 && gate_count(&outcome.spec) <= 1,
            "impl={} spec={} gates left",
            gate_count(&outcome.implementation),
            gate_count(&outcome.spec)
        );
        // The shrunk pair still fails.
        assert!(sim_disagrees(&outcome.implementation, &outcome.spec));
        outcome.implementation.check_well_formed().unwrap();
        outcome.spec.check_well_formed().unwrap();
    }

    #[test]
    fn non_failing_pair_is_returned_unchanged() {
        let (a, _) = noisy_pair();
        let outcome = shrink_pair(&a, &a.clone(), sim_disagrees, 500);
        assert_eq!(outcome.rounds, 0);
        assert_eq!(outcome.predicate_calls, 1);
        assert_eq!(gate_count(&outcome.implementation), gate_count(&a));
    }

    #[test]
    fn respects_the_call_budget() {
        let (a, b) = noisy_pair();
        let mut calls = 0usize;
        let outcome = shrink_pair(
            &a,
            &b,
            |i, s| {
                calls += 1;
                sim_disagrees(i, s)
            },
            5,
        );
        assert!(outcome.predicate_calls <= 5 + 1);
        assert!(calls <= 6);
    }
}
