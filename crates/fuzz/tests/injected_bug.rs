//! Mutation test of the conformance harness itself: an intentionally
//! broken oracle must be caught by cross-checking and shrink to a tiny
//! repro. If this test fails, the fuzzer has lost its ability to detect
//! real oracle bugs.

use eco_fuzz::{
    cross_check_oracles, gate_count, generate, parse_repro, port_map, shrink_pair, write_repro,
    Oracle, Repro, ScenarioConfig, SimOracle,
};
use eco_netlist::{Circuit, GateKind};

/// A simulation oracle with a deliberate evaluator bug: every `Not` gate
/// is treated as a `Buf` (the inversion is dropped). Implemented by
/// rewriting the circuits before handing them to the honest simulator,
/// which models a miscompiled gate-evaluation table.
struct BrokenSimOracle;

fn drop_inversions(c: &Circuit) -> Circuit {
    let mut out = c.clone();
    let targets: Vec<_> = out
        .iter_live()
        .filter(|&id| out.node(id).kind() == GateKind::Not)
        .collect();
    for id in targets {
        out.set_gate_kind(id, GateKind::Buf).unwrap();
    }
    out
}

impl Oracle for BrokenSimOracle {
    fn name(&self) -> &str {
        "broken-sim"
    }

    fn check_all(
        &mut self,
        implementation: &Circuit,
        spec: &Circuit,
        map: &eco_fuzz::PortMap,
    ) -> Result<Vec<eco_fuzz::Verdict>, eco_fuzz::FuzzError> {
        SimOracle::default().check_all(
            &drop_inversions(implementation),
            &drop_inversions(spec),
            map,
        )
    }
}

/// The failing predicate: the broken oracle disagrees with the honest one
/// (conflicting verdicts or a witness that does not reproduce).
fn broken_vs_honest_disagree(implementation: &Circuit, spec: &Circuit) -> bool {
    let Ok(map) = port_map(implementation, spec) else {
        return false;
    };
    let Ok(honest) = SimOracle::default().check_all(implementation, spec, &map) else {
        return false;
    };
    let Ok(broken) = BrokenSimOracle.check_all(implementation, spec, &map) else {
        return false;
    };
    let named = vec![
        ("sim".to_string(), honest),
        ("broken-sim".to_string(), broken),
    ];
    !cross_check_oracles(implementation, spec, &map, &named).is_empty()
}

#[test]
fn injected_oracle_bug_is_detected_and_shrinks_small() {
    let config = ScenarioConfig::default();
    let mut caught = None;
    for seed in 0..64 {
        let s = generate(seed, &config).expect("scenario generation");
        if broken_vs_honest_disagree(&s.implementation, &s.spec) {
            caught = Some(s);
            break;
        }
    }
    let scenario = caught.expect("the broken oracle must disagree within 64 scenarios");

    let outcome = shrink_pair(
        &scenario.implementation,
        &scenario.spec,
        broken_vs_honest_disagree,
        400,
    );
    let total = gate_count(&outcome.implementation) + gate_count(&outcome.spec);
    assert!(
        total <= 8,
        "repro still has {total} gates after {} predicate calls",
        outcome.predicate_calls
    );
    // The shrunk pair still exposes the bug.
    assert!(broken_vs_honest_disagree(
        &outcome.implementation,
        &outcome.spec
    ));

    // And it survives a serialization roundtrip as a replayable repro.
    let repro = Repro {
        seed: scenario.seed,
        iteration: 0,
        check: "oracle:sim-vs-broken-sim".into(),
        detail: "injected Not->Buf evaluator bug".into(),
        fault: None,
        implementation: outcome.implementation,
        spec: outcome.spec,
    };
    let parsed = parse_repro(&write_repro(&repro)).expect("repro roundtrip");
    assert!(broken_vs_honest_disagree(
        &parsed.implementation,
        &parsed.spec
    ));
}
