//! Netlist-level cross-oracle conformance over a batch of generated
//! scenarios. The heavier pipeline-level run (rectify, cache replay) lives
//! in the workspace-level `fuzz_conformance` test of `syseco`.

use eco_fuzz::{check_conformance, generate, ScenarioConfig};

#[test]
fn forty_scenarios_with_zero_disagreements() {
    let config = ScenarioConfig::default();
    for seed in 0..40 {
        let s = generate(seed, &config).unwrap();
        let disagreements = check_conformance(&s.implementation, &s.spec, seed).unwrap();
        assert!(
            disagreements.is_empty(),
            "seed {seed}: {}",
            disagreements
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[test]
fn conformance_holds_on_heavily_optimized_pairs() {
    let config = ScenarioConfig {
        heavy_optimization: true,
        ..ScenarioConfig::default()
    };
    for seed in 100..110 {
        let s = generate(seed, &config).unwrap();
        let disagreements = check_conformance(&s.implementation, &s.spec, seed).unwrap();
        assert!(disagreements.is_empty(), "seed {seed}: {disagreements:?}");
    }
}
