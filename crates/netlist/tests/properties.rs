//! Property-based tests for the netlist data model.

use std::collections::HashMap;

use eco_netlist::{sim, strash, topo, Circuit, GateKind, NetId, Pin};
use proptest::prelude::*;

/// Recipe for one random gate: kind selector and fanin selectors.
#[derive(Debug, Clone)]
struct GateRecipe {
    kind_sel: u8,
    fanin_sels: Vec<u32>,
}

/// Recipe for a whole random circuit.
#[derive(Debug, Clone)]
struct CircuitRecipe {
    num_inputs: usize,
    gates: Vec<GateRecipe>,
    output_sels: Vec<u32>,
}

fn kind_from_sel(sel: u8) -> GateKind {
    match sel % 8 {
        0 => GateKind::And,
        1 => GateKind::Or,
        2 => GateKind::Nand,
        3 => GateKind::Nor,
        4 => GateKind::Xor,
        5 => GateKind::Xnor,
        6 => GateKind::Not,
        _ => GateKind::Mux,
    }
}

fn build(recipe: &CircuitRecipe) -> Circuit {
    let mut c = Circuit::new("prop");
    let mut nets: Vec<NetId> = (0..recipe.num_inputs)
        .map(|i| c.add_input(format!("x{i}")))
        .collect();
    for g in &recipe.gates {
        let kind = kind_from_sel(g.kind_sel);
        let need = kind.arity().unwrap_or(2);
        let fanins: Vec<NetId> = (0..need)
            .map(|k| nets[g.fanin_sels[k] as usize % nets.len()])
            .collect();
        let w = c.add_gate(kind, &fanins).expect("recipe fanins are valid");
        nets.push(w);
    }
    for (i, sel) in recipe.output_sels.iter().enumerate() {
        c.add_output(format!("y{i}"), nets[*sel as usize % nets.len()]);
    }
    c
}

fn circuit_strategy(max_gates: usize) -> impl Strategy<Value = CircuitRecipe> {
    (2usize..6, 1usize..max_gates, 1usize..4).prop_flat_map(|(ni, ng, no)| {
        let gates = proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u32>(), 3)).prop_map(
                |(kind_sel, fanin_sels)| GateRecipe {
                    kind_sel,
                    fanin_sels,
                },
            ),
            ng,
        );
        let outs = proptest::collection::vec(any::<u32>(), no);
        (Just(ni), gates, outs).prop_map(|(num_inputs, gates, output_sels)| CircuitRecipe {
            num_inputs,
            gates,
            output_sels,
        })
    })
}

fn all_assignments(n: usize) -> Vec<Vec<bool>> {
    (0..(1usize << n.min(6)))
        .map(|j| (0..n).map(|i| (j >> i) & 1 == 1).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_circuits_are_well_formed(recipe in circuit_strategy(30)) {
        let c = build(&recipe);
        prop_assert!(c.check_well_formed().is_ok());
    }

    #[test]
    fn simulate64_matches_eval(recipe in circuit_strategy(30)) {
        let c = build(&recipe);
        let n = c.num_inputs();
        let mut patterns = vec![0u64; n];
        let assigns = all_assignments(n);
        for (j, a) in assigns.iter().enumerate() {
            for (i, &v) in a.iter().enumerate() {
                if v {
                    patterns[i] |= 1u64 << j;
                }
            }
        }
        let words = sim::simulate64(&c, &patterns).unwrap();
        for (j, a) in assigns.iter().enumerate() {
            let scalar = c.eval(a).unwrap();
            for (oi, port) in c.outputs().iter().enumerate() {
                prop_assert_eq!(
                    sim::word_bit(&words, port.net().index(), j),
                    scalar[oi]
                );
            }
        }
    }

    #[test]
    fn strash_preserves_function(recipe in circuit_strategy(40)) {
        let mut c = build(&recipe);
        let assigns = all_assignments(c.num_inputs());
        let reference: Vec<Vec<bool>> =
            assigns.iter().map(|a| c.eval(a).unwrap()).collect();
        strash::strash(&mut c).unwrap();
        prop_assert!(c.check_well_formed().is_ok());
        for (a, expect) in assigns.iter().zip(&reference) {
            prop_assert_eq!(&c.eval(a).unwrap(), expect);
        }
    }

    #[test]
    fn sweep_preserves_function(recipe in circuit_strategy(40)) {
        let mut c = build(&recipe);
        let assigns = all_assignments(c.num_inputs());
        let reference: Vec<Vec<bool>> =
            assigns.iter().map(|a| c.eval(a).unwrap()).collect();
        c.sweep();
        prop_assert!(c.check_well_formed().is_ok());
        for (a, expect) in assigns.iter().zip(&reference) {
            prop_assert_eq!(&c.eval(a).unwrap(), expect);
        }
    }

    #[test]
    fn topo_order_is_consistent(recipe in circuit_strategy(40)) {
        let c = build(&recipe);
        let order = topo::topo_order(&c).unwrap();
        let pos: HashMap<_, _> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for id in c.iter_live() {
            for f in c.node(id).fanins() {
                prop_assert!(pos[&f.source()] < pos[&id]);
            }
        }
    }

    #[test]
    fn clone_cone_preserves_function(recipe in circuit_strategy(30)) {
        let src = build(&recipe);
        let mut dst = Circuit::new("dst");
        for i in 0..src.num_inputs() {
            dst.add_input(format!("x{i}"));
        }
        let roots: Vec<NetId> = src.outputs().iter().map(|p| p.net()).collect();
        let map = dst.clone_cone(&src, &roots, &HashMap::new()).unwrap();
        for (i, p) in src.outputs().iter().enumerate() {
            dst.add_output(format!("y{i}"), map[&p.net()]);
        }
        prop_assert!(dst.check_well_formed().is_ok());
        for a in all_assignments(src.num_inputs()) {
            prop_assert_eq!(dst.eval(&a).unwrap(), src.eval(&a).unwrap());
        }
    }

    #[test]
    fn blif_roundtrip_preserves_function(recipe in circuit_strategy(30)) {
        let mut c = build(&recipe);
        c.sweep();
        let text = eco_netlist::write_blif(&c);
        let parsed = eco_netlist::read_blif(&text).unwrap();
        prop_assert_eq!(parsed.num_inputs(), c.num_inputs());
        prop_assert_eq!(parsed.num_outputs(), c.num_outputs());
        for a in all_assignments(c.num_inputs()) {
            prop_assert_eq!(parsed.eval(&a).unwrap(), c.eval(&a).unwrap());
        }
    }

    #[test]
    fn rewire_roundtrip_restores_function(recipe in circuit_strategy(30), pick in any::<u32>()) {
        let mut c = build(&recipe);
        let assigns = all_assignments(c.num_inputs());
        let reference: Vec<Vec<bool>> =
            assigns.iter().map(|a| c.eval(a).unwrap()).collect();
        // Pick some live gate pin and rewire it to input 0, then back.
        let gates: Vec<_> = c
            .iter_live()
            .filter(|&id| !c.node(id).fanins().is_empty())
            .collect();
        if gates.is_empty() {
            return Ok(());
        }
        let g = gates[pick as usize % gates.len()];
        let pin = Pin::gate(g, 0);
        let original = c.pin_net(pin).unwrap();
        let target: NetId = c.inputs()[0].into();
        if c.rewire(pin, target).is_ok() {
            c.rewire(pin, original).unwrap();
            for (a, expect) in assigns.iter().zip(&reference) {
                prop_assert_eq!(&c.eval(a).unwrap(), expect);
            }
        }
    }
}
