//! Structural hashing: merging structurally identical gates.
//!
//! Heavy logic sharing is one of the optimization effects that destroys the
//! structural correspondence between an implementation and its specification
//! (paper §1); this pass is used by `eco-synth` to produce such shared
//! netlists, and by the patch sweep to avoid duplicating cloned logic.

use std::collections::HashMap;

use crate::topo::topo_order;
use crate::{Circuit, GateKind, NetId, NetlistError};

/// Key identifying a gate up to structural equivalence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StrashKey {
    kind: GateKind,
    fanins: Vec<NetId>,
}

/// Merges structurally identical gates and collapses `Buf` gates.
///
/// Two gates merge when they have the same kind and the same fanin list after
/// representative substitution (fanins sorted first for commutative kinds).
/// All sink pins of a merged gate are redirected to the surviving
/// representative; dangling gates are swept. Returns the number of gates
/// removed.
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`] if the circuit is cyclic.
///
/// # Example
///
/// ```
/// use eco_netlist::{Circuit, GateKind, strash};
///
/// # fn main() -> Result<(), eco_netlist::NetlistError> {
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let g1 = c.add_gate(GateKind::And, &[a, b])?;
/// let g2 = c.add_gate(GateKind::And, &[b, a])?; // same function, shared after strash
/// let y = c.add_gate(GateKind::Or, &[g1, g2])?;
/// c.add_output("y", y);
/// let removed = strash::strash(&mut c)?;
/// assert_eq!(removed, 1);
/// # Ok(())
/// # }
/// ```
pub fn strash(circuit: &mut Circuit) -> Result<usize, NetlistError> {
    let order = topo_order(circuit)?;
    let mut rep: HashMap<NetId, NetId> = HashMap::new();
    let mut table: HashMap<StrashKey, NetId> = HashMap::new();

    let resolve = |rep: &HashMap<NetId, NetId>, mut w: NetId| -> NetId {
        while let Some(&r) = rep.get(&w) {
            if r == w {
                break;
            }
            w = r;
        }
        w
    };

    for id in order {
        let node = circuit.node(id);
        let kind = node.kind();
        if kind == GateKind::Input || kind.is_const() {
            continue;
        }
        let net: NetId = id.into();
        let mut fanins: Vec<NetId> = node.fanins().iter().map(|&f| resolve(&rep, f)).collect();
        if kind == GateKind::Buf {
            rep.insert(net, fanins[0]);
            continue;
        }
        if kind.is_commutative() {
            fanins.sort();
        }
        let key = StrashKey { kind, fanins };
        match table.get(&key) {
            Some(&existing) => {
                rep.insert(net, existing);
            }
            None => {
                table.insert(key, net);
            }
        }
    }

    if rep.is_empty() {
        return Ok(0);
    }

    // Apply the representative map to all live fanins and outputs.
    let mut changed_nets = 0usize;
    let live: Vec<_> = circuit.iter_live().collect();
    for id in live {
        let fanins: Vec<NetId> = circuit.node(id).fanins().to_vec();
        for (pos, f) in fanins.iter().enumerate() {
            let r = resolve(&rep, *f);
            if r != *f {
                circuit
                    .rewire(crate::Pin::gate(id, pos as u8), r)
                    .expect("strash substitution cannot create a cycle");
            }
        }
    }
    for i in 0..circuit.num_outputs() {
        let w = circuit.outputs()[i].net();
        let r = resolve(&rep, w);
        if r != w {
            circuit.set_output_net(i as u32, r)?;
            changed_nets += 1;
        }
    }
    let _ = changed_nets;
    Ok(circuit.sweep())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, GateKind};

    #[test]
    fn merges_commutative_duplicates() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::And, &[b, a]).unwrap();
        let y = c.add_gate(GateKind::Xor, &[g1, g2]).unwrap();
        c.add_output("y", y);
        strash(&mut c).unwrap();
        // xor(g, g) stays structurally (no functional rewriting here), but g2
        // is gone.
        let live_ands = c
            .iter_live()
            .filter(|&id| c.node(id).kind() == GateKind::And)
            .count();
        assert_eq!(live_ands, 1);
        c.check_well_formed().unwrap();
    }

    #[test]
    fn mux_is_not_reordered() {
        let mut c = Circuit::new("t");
        let s = c.add_input("s");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let m1 = c.add_gate(GateKind::Mux, &[s, a, b]).unwrap();
        let m2 = c.add_gate(GateKind::Mux, &[s, b, a]).unwrap();
        let y = c.add_gate(GateKind::And, &[m1, m2]).unwrap();
        c.add_output("y", y);
        let removed = strash(&mut c).unwrap();
        assert_eq!(removed, 0);
    }

    #[test]
    fn collapses_buffers() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let buf1 = c.add_gate(GateKind::Buf, &[a]).unwrap();
        let buf2 = c.add_gate(GateKind::Buf, &[buf1]).unwrap();
        let y = c.add_gate(GateKind::Not, &[buf2]).unwrap();
        c.add_output("y", y);
        strash(&mut c).unwrap();
        assert_eq!(c.node(y.source()).fanins()[0], a);
        assert_eq!(
            c.iter_live()
                .filter(|&id| c.node(id).kind() == GateKind::Buf)
                .count(),
            0
        );
    }

    #[test]
    fn cascaded_merging() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        // Two identical two-level structures.
        let x1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let y1 = c.add_gate(GateKind::Not, &[x1]).unwrap();
        let x2 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let y2 = c.add_gate(GateKind::Not, &[x2]).unwrap();
        let out = c.add_gate(GateKind::Or, &[y1, y2]).unwrap();
        c.add_output("y", out);
        let removed = strash(&mut c).unwrap();
        assert_eq!(removed, 2);
        c.check_well_formed().unwrap();
    }

    #[test]
    fn preserves_function() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::Or, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, &[b, a]).unwrap();
        let g3 = c.add_gate(GateKind::Xor, &[g1, d]).unwrap();
        let g4 = c.add_gate(GateKind::Xnor, &[g2, d]).unwrap();
        let y = c.add_gate(GateKind::And, &[g3, g4]).unwrap();
        c.add_output("y", y);
        let reference: Vec<bool> = (0..8)
            .map(|j| c.eval(&[(j & 1) == 1, (j & 2) == 2, (j & 4) == 4]).unwrap()[0])
            .collect();
        strash(&mut c).unwrap();
        for (j, &expect) in reference.iter().enumerate() {
            let got = c.eval(&[(j & 1) == 1, (j & 2) == 2, (j & 4) == 4]).unwrap()[0];
            assert_eq!(got, expect, "pattern {j}");
        }
    }
}
