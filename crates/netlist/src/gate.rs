//! Gate types and their Boolean semantics.

use std::fmt;

/// The logic operation computed by a node.
///
/// `And`, `Or`, `Nand`, `Nor`, `Xor`, `Xnor` accept two **or more** fanins
/// (n-ary semantics: chained application of the binary operator for
/// `Xor`/`Xnor`, reduction for the others). `Not` and `Buf` are unary.
/// `Mux` has exactly three fanins `(sel, d0, d1)` and computes
/// `sel ? d1 : d0` — the polarity used by the parameterized rectification-
/// point selection of paper §4.2 (data-1 is taken when selected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Primary input; no fanins.
    Input,
    /// Constant false; no fanins.
    Const0,
    /// Constant true; no fanins.
    Const1,
    /// Identity; one fanin.
    Buf,
    /// Negation; one fanin.
    Not,
    /// Conjunction of all fanins.
    And,
    /// Disjunction of all fanins.
    Or,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Parity of all fanins.
    Xor,
    /// Negated parity.
    Xnor,
    /// `fanin[0] ? fanin[2] : fanin[1]`.
    Mux,
}

impl GateKind {
    /// Number of fanins this gate kind requires, or `None` when n-ary
    /// (two or more).
    ///
    /// ```
    /// use eco_netlist::GateKind;
    /// assert_eq!(GateKind::Not.arity(), Some(1));
    /// assert_eq!(GateKind::Mux.arity(), Some(3));
    /// assert_eq!(GateKind::And.arity(), None); // n-ary, >= 2
    /// ```
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => Some(0),
            GateKind::Buf | GateKind::Not => Some(1),
            GateKind::Mux => Some(3),
            GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => None,
        }
    }

    /// Whether `n` fanins is a legal fanin count for this gate kind.
    pub fn accepts_arity(self, n: usize) -> bool {
        match self.arity() {
            Some(k) => n == k,
            None => n >= 2,
        }
    }

    /// True for the two constant kinds.
    pub fn is_const(self) -> bool {
        matches!(self, GateKind::Const0 | GateKind::Const1)
    }

    /// True when the output value is independent of fanin order.
    pub fn is_commutative(self) -> bool {
        !matches!(
            self,
            GateKind::Mux | GateKind::Input | GateKind::Const0 | GateKind::Const1
        )
    }

    /// Evaluates the gate over boolean fanin values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` violates [`GateKind::accepts_arity`], or when
    /// called on [`GateKind::Input`] (inputs have no local function).
    pub fn eval(self, inputs: &[bool]) -> bool {
        debug_assert!(
            self.accepts_arity(inputs.len()),
            "gate {self} applied to {} fanins",
            inputs.len()
        );
        match self {
            GateKind::Input => panic!("primary input has no gate function"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Evaluates the gate over 64 parallel patterns packed in `u64` words.
    ///
    /// Bit `i` of the result is the gate output for pattern `i`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GateKind::eval`].
    pub fn eval64(self, inputs: &[u64]) -> u64 {
        debug_assert!(
            self.accepts_arity(inputs.len()),
            "gate {self} applied to {} fanins",
            inputs.len()
        );
        match self {
            GateKind::Input => panic!("primary input has no gate function"),
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(!0, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nand => !inputs.iter().fold(!0, |acc, &w| acc & w),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Mux => (inputs[0] & inputs[2]) | (!inputs[0] & inputs[1]),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "input",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: [bool; 2] = [false, true];

    #[test]
    fn binary_truth_tables() {
        for &a in &B {
            for &b in &B {
                assert_eq!(GateKind::And.eval(&[a, b]), a && b);
                assert_eq!(GateKind::Or.eval(&[a, b]), a || b);
                assert_eq!(GateKind::Nand.eval(&[a, b]), !(a && b));
                assert_eq!(GateKind::Nor.eval(&[a, b]), !(a || b));
                assert_eq!(GateKind::Xor.eval(&[a, b]), a ^ b);
                assert_eq!(GateKind::Xnor.eval(&[a, b]), !(a ^ b));
            }
        }
    }

    #[test]
    fn unary_and_const() {
        assert!(!GateKind::Const0.eval(&[]));
        assert!(GateKind::Const1.eval(&[]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Buf.eval(&[true]));
    }

    #[test]
    fn mux_selects_data1_when_sel_true() {
        for &s in &B {
            for &d0 in &B {
                for &d1 in &B {
                    let expect = if s { d1 } else { d0 };
                    assert_eq!(GateKind::Mux.eval(&[s, d0, d1]), expect);
                }
            }
        }
    }

    #[test]
    fn nary_gates() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false, true]));
        assert!(GateKind::Or.eval(&[false, false, true]));
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true]));
    }

    #[test]
    fn eval64_matches_eval_bitwise() {
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        // Patterns: bit i of word j = bit j of i (exhaustive 2-input tables
        // in the low 4 bits).
        let w0 = 0b1010u64;
        let w1 = 0b1100u64;
        for kind in kinds {
            let packed = kind.eval64(&[w0, w1]);
            for i in 0..4 {
                let a = (w0 >> i) & 1 == 1;
                let b = (w1 >> i) & 1 == 1;
                assert_eq!((packed >> i) & 1 == 1, kind.eval(&[a, b]), "{kind} at {i}");
            }
        }
        let sel = 0b1100u64;
        let d0 = 0b1010u64;
        let d1 = 0b0110u64;
        let packed = GateKind::Mux.eval64(&[sel, d0, d1]);
        for i in 0..4 {
            let bits = [(sel >> i) & 1 == 1, (d0 >> i) & 1 == 1, (d1 >> i) & 1 == 1];
            assert_eq!((packed >> i) & 1 == 1, GateKind::Mux.eval(&bits));
        }
    }

    #[test]
    fn arity_checks() {
        assert!(GateKind::And.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(5));
        assert!(!GateKind::And.accepts_arity(1));
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::Mux.accepts_arity(3));
        assert!(!GateKind::Mux.accepts_arity(2));
        assert!(GateKind::Input.accepts_arity(0));
    }

    #[test]
    fn commutativity_flags() {
        assert!(GateKind::And.is_commutative());
        assert!(GateKind::Xor.is_commutative());
        assert!(!GateKind::Mux.is_commutative());
    }
}
