//! Circuit statistics in the units of the paper's Table 1.

use std::fmt;

use crate::{Circuit, GateKind};

/// Size attributes of a circuit, counted as in paper Table 1.
///
/// * `gates` — live logic gates (inputs and constants excluded),
/// * `nets` — live nets with a source (every live node drives one),
/// * `sinks` — total sink pins: gate fanin connections plus output ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Live logic gates.
    pub gates: usize,
    /// Live nets.
    pub nets: usize,
    /// Total sink pins.
    pub sinks: usize,
    /// Maximum logic level over the outputs (0 for constant circuits).
    pub depth: u32,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    ///
    /// # Example
    ///
    /// ```
    /// use eco_netlist::{Circuit, CircuitStats, GateKind};
    ///
    /// # fn main() -> Result<(), eco_netlist::NetlistError> {
    /// let mut c = Circuit::new("t");
    /// let a = c.add_input("a");
    /// let b = c.add_input("b");
    /// let y = c.add_gate(GateKind::And, &[a, b])?;
    /// c.add_output("y", y);
    /// let s = CircuitStats::of(&c);
    /// assert_eq!((s.inputs, s.outputs, s.gates, s.nets, s.sinks), (2, 1, 1, 3, 3));
    /// # Ok(())
    /// # }
    /// ```
    pub fn of(circuit: &Circuit) -> Self {
        let mut gates = 0;
        let mut nets = 0;
        let mut sinks = circuit.num_outputs();
        for id in circuit.iter_live() {
            let node = circuit.node(id);
            nets += 1;
            if node.kind() != GateKind::Input && !node.kind().is_const() {
                gates += 1;
            }
            sinks += node.fanins().len();
        }
        let depth = crate::topo::levels(circuit)
            .map(|lv| {
                circuit
                    .outputs()
                    .iter()
                    .map(|p| lv[p.net().index()])
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        CircuitStats {
            inputs: circuit.num_inputs(),
            outputs: circuit.num_outputs(),
            gates,
            nets,
            sinks,
            depth,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inputs={} outputs={} gates={} nets={} sinks={} depth={}",
            self.inputs, self.outputs, self.gates, self.nets, self.sinks, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, GateKind};

    #[test]
    fn counts_exclude_dead_nodes() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let _g2 = c.add_gate(GateKind::Or, &[a, b]).unwrap();
        c.add_output("y", g1);
        let before = CircuitStats::of(&c);
        assert_eq!(before.gates, 2);
        c.sweep();
        let after = CircuitStats::of(&c);
        assert_eq!(after.gates, 1);
        assert_eq!(after.nets, 3);
        assert_eq!(after.sinks, 3);
        assert_eq!(after.depth, 1);
    }

    #[test]
    fn constants_counted_as_nets_not_gates() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let k = c.constant(true);
        let g = c.add_gate(GateKind::And, &[a, k]).unwrap();
        c.add_output("y", g);
        let s = CircuitStats::of(&c);
        assert_eq!(s.gates, 1);
        assert_eq!(s.nets, 3);
    }

    #[test]
    fn display_nonempty() {
        let c = Circuit::new("t");
        assert!(!CircuitStats::of(&c).to_string().is_empty());
    }
}
