//! The [`Circuit`] container and its construction / mutation API.

use std::collections::HashMap;

use crate::topo;
use crate::{GateKind, NetId, NetlistError, NodeId, Pin};

/// A node of the circuit graph: a primary input, a constant, or a gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    kind: GateKind,
    fanins: Vec<NetId>,
    name: Option<String>,
    dead: bool,
}

impl Node {
    /// The logic operation of this node.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Nets driving this node's input pins, in pin order.
    #[inline]
    pub fn fanins(&self) -> &[NetId] {
        &self.fanins
    }

    /// Optional label; primary inputs always have one.
    #[inline]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Whether the node has been removed by [`Circuit::sweep`].
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// A primary output port: a labelled sink pin of a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputPort {
    name: String,
    net: NetId,
}

impl OutputPort {
    /// The port label, used for behavioural correspondence between circuits.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net this port observes.
    #[inline]
    pub fn net(&self) -> NetId {
        self.net
    }
}

/// A combinational Boolean circuit (paper §3.1).
///
/// Nodes are stored in an arena indexed by [`NodeId`]; each node's output is
/// the net with the same index. Construction is append-only; mutation is
/// limited to the ECO primitives ([`rewire`](Circuit::rewire),
/// [`set_output_net`](Circuit::set_output_net),
/// [`clone_cone`](Circuit::clone_cone)) and garbage collection
/// ([`sweep`](Circuit::sweep)), which keeps node ids stable for the lifetime
/// of an analysis.
///
/// # Example
///
/// ```
/// use eco_netlist::{Circuit, GateKind};
///
/// # fn main() -> Result<(), eco_netlist::NetlistError> {
/// let mut c = Circuit::new("mux_demo");
/// let s = c.add_input("s");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let y = c.add_gate(GateKind::Mux, &[s, a, b])?;
/// c.add_output("y", y);
/// assert_eq!(c.eval(&[true, false, true])?, vec![true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<OutputPort>,
    const0: Option<NodeId>,
    const1: Option<NodeId>,
}

impl Circuit {
    /// Creates an empty circuit with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            const0: None,
            const1: None,
        }
    }

    /// The design name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a primary input with the given label and returns its net.
    ///
    /// Labels establish behavioural correspondence between an implementation
    /// and its specification; uniqueness is checked by
    /// [`check_well_formed`](Circuit::check_well_formed) rather than here so
    /// that bulk builders stay infallible.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: GateKind::Input,
            fanins: Vec::new(),
            name: Some(name.into()),
            dead: false,
        });
        self.inputs.push(id);
        id.into()
    }

    /// Renames the primary input at `position` (declaration order).
    ///
    /// Correspondence with a specification is label-based, so renaming is
    /// only safe before an engine run — typically to give unnamed inputs
    /// stable generated labels. Uniqueness is checked by
    /// [`check_well_formed`](Circuit::check_well_formed), as for
    /// [`add_input`](Circuit::add_input).
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNode`] when `position` is out of range.
    pub fn set_input_name(
        &mut self,
        position: usize,
        name: impl Into<String>,
    ) -> Result<(), NetlistError> {
        let &id = self
            .inputs
            .get(position)
            .ok_or(NetlistError::UnknownNode(NodeId(position as u32)))?;
        self.nodes[id.index()].name = Some(name.into());
        Ok(())
    }

    /// Adds a gate of `kind` over `fanins` and returns its output net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the fanin count is illegal for
    /// `kind`, [`NetlistError::UnknownNet`] if a fanin does not exist, and
    /// [`NetlistError::DeadNode`] if a fanin was swept.
    pub fn add_gate(&mut self, kind: GateKind, fanins: &[NetId]) -> Result<NetId, NetlistError> {
        if matches!(kind, GateKind::Input) || !kind.accepts_arity(fanins.len()) {
            return Err(NetlistError::BadArity {
                kind,
                got: fanins.len(),
            });
        }
        for &w in fanins {
            self.check_net(w)?;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            fanins: fanins.to_vec(),
            name: None,
            dead: false,
        });
        Ok(id.into())
    }

    /// Returns the net of the constant `value`, creating the node on first
    /// use.
    pub fn constant(&mut self, value: bool) -> NetId {
        let slot = if value {
            &mut self.const1
        } else {
            &mut self.const0
        };
        if let Some(id) = *slot {
            return id.into();
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: if value {
                GateKind::Const1
            } else {
                GateKind::Const0
            },
            fanins: Vec::new(),
            name: None,
            dead: false,
        });
        *slot = Some(id);
        id.into()
    }

    /// Adds a primary output observing `net`; returns the port index.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) -> u32 {
        let index = self.outputs.len() as u32;
        self.outputs.push(OutputPort {
            name: name.into(),
            net,
        });
        index
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Total number of node slots, live and dead.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary-output ports.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The node stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds; use [`try_node`](Circuit::try_node)
    /// for a fallible lookup.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Fallible variant of [`node`](Circuit::node).
    pub fn try_node(&self, id: NodeId) -> Result<&Node, NetlistError> {
        self.nodes
            .get(id.index())
            .ok_or(NetlistError::UnknownNode(id))
    }

    /// Primary-input nodes in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary-output ports in declaration order.
    #[inline]
    pub fn outputs(&self) -> &[OutputPort] {
        &self.outputs
    }

    /// Iterates over live node ids.
    pub fn iter_live(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.dead)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Looks up a primary input by label.
    pub fn input_by_name(&self, name: &str) -> Option<NetId> {
        self.inputs
            .iter()
            .find(|&&id| self.nodes[id.index()].name.as_deref() == Some(name))
            .map(|&id| id.into())
    }

    /// Looks up a primary output port index by label.
    pub fn output_by_name(&self, name: &str) -> Option<u32> {
        self.outputs
            .iter()
            .position(|p| p.name == name)
            .map(|i| i as u32)
    }

    /// Position of `id` in the primary-input order, if it is an input.
    pub fn input_position(&self, id: NodeId) -> Option<usize> {
        self.inputs.iter().position(|&i| i == id)
    }

    /// The net currently driving `pin`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPin`] when the pin does not exist.
    pub fn pin_net(&self, pin: Pin) -> Result<NetId, NetlistError> {
        match pin {
            Pin::Gate { node, pos } => {
                let n = self.try_node(node)?;
                n.fanins
                    .get(pos as usize)
                    .copied()
                    .ok_or(NetlistError::UnknownPin(pin))
            }
            Pin::Output { index } => self
                .outputs
                .get(index as usize)
                .map(|p| p.net)
                .ok_or(NetlistError::UnknownPin(pin)),
        }
    }

    /// Computes the sink pins of every net.
    ///
    /// Index `i` of the result lists the pins consuming net `i`. Dead nodes
    /// contribute no pins. The result is recomputed on each call; callers in
    /// hot loops should cache it while the circuit is not mutated.
    pub fn fanouts(&self) -> Vec<Vec<Pin>> {
        let mut fo: Vec<Vec<Pin>> = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if n.dead {
                continue;
            }
            for (pos, w) in n.fanins.iter().enumerate() {
                fo[w.index()].push(Pin::gate(NodeId(i as u32), pos as u8));
            }
        }
        for (i, p) in self.outputs.iter().enumerate() {
            fo[p.net.index()].push(Pin::output(i as u32));
        }
        fo
    }

    // ------------------------------------------------------------------
    // Mutation (the ECO primitives)
    // ------------------------------------------------------------------

    /// Disconnects `pin` from its driving net and connects it to `net` — the
    /// rewire operation `p/s` of paper §3.3.
    ///
    /// Acyclicity is preserved: the mutation is rejected when the consuming
    /// gate lies in the transitive fanin of `net`'s source.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownPin`] / [`NetlistError::UnknownNet`] for bad
    /// references, [`NetlistError::DeadNode`] for swept sources, and
    /// [`NetlistError::WouldCycle`] when the rewire would create a
    /// combinational cycle.
    pub fn rewire(&mut self, pin: Pin, net: NetId) -> Result<(), NetlistError> {
        self.check_net(net)?;
        match pin {
            Pin::Output { index } => {
                if index as usize >= self.outputs.len() {
                    return Err(NetlistError::UnknownPin(pin));
                }
                self.outputs[index as usize].net = net;
                Ok(())
            }
            Pin::Gate { node, pos } => {
                let n = self.try_node(node)?;
                if pos as usize >= n.fanins.len() {
                    return Err(NetlistError::UnknownPin(pin));
                }
                // Connecting net -> node adds edge net.source -> node; a cycle
                // appears exactly when node already reaches net.source, i.e.
                // node is in the transitive fanin of the new source.
                if node == net.source() || topo::tfi_contains(self, net.source(), node) {
                    return Err(NetlistError::WouldCycle { pin, net });
                }
                self.nodes[node.index()].fanins[pos as usize] = net;
                Ok(())
            }
        }
    }

    /// Redirects primary output `index` to observe `net`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownPin`] when the port does not exist,
    /// [`NetlistError::UnknownNet`] / [`NetlistError::DeadNode`] for bad nets.
    pub fn set_output_net(&mut self, index: u32, net: NetId) -> Result<(), NetlistError> {
        self.rewire(Pin::output(index), net)
    }

    /// Replaces the logic operation of the gate at `node`, keeping its
    /// fanins — the gate-type-flip mutation used by differential fuzzing
    /// (`eco-fuzz`) to derive semantics-changed specifications.
    ///
    /// The structure of the graph is untouched, so acyclicity is preserved
    /// by construction.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNode`] when `node` does not exist,
    /// [`NetlistError::DeadNode`] when it was swept, and
    /// [`NetlistError::BadArity`] when `kind` is [`GateKind::Input`] or does
    /// not accept the node's current fanin count.
    pub fn set_gate_kind(&mut self, node: NodeId, kind: GateKind) -> Result<(), NetlistError> {
        let n = self.try_node(node)?;
        if n.is_dead() {
            return Err(NetlistError::DeadNode(node));
        }
        if n.kind() == GateKind::Input {
            return Err(NetlistError::BadArity { kind, got: 0 });
        }
        if matches!(kind, GateKind::Input) || !kind.accepts_arity(n.fanins.len()) {
            return Err(NetlistError::BadArity {
                kind,
                got: n.fanins.len(),
            });
        }
        self.nodes[node.index()].kind = kind;
        Ok(())
    }

    /// Swaps two fanin pins of the gate at `node` — the pin-swap mutation of
    /// differential fuzzing. Only meaningful on order-sensitive gates
    /// ([`GateKind::Mux`]); on commutative gates it is a structural no-op
    /// for evaluation but still changes pin-level identity.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownNode`] / [`NetlistError::DeadNode`] for bad
    /// nodes, [`NetlistError::UnknownPin`] when either position is out of
    /// range.
    pub fn swap_fanins(&mut self, node: NodeId, a: u8, b: u8) -> Result<(), NetlistError> {
        let n = self.try_node(node)?;
        if n.is_dead() {
            return Err(NetlistError::DeadNode(node));
        }
        let len = n.fanins.len();
        for pos in [a, b] {
            if pos as usize >= len {
                return Err(NetlistError::UnknownPin(Pin::gate(node, pos)));
            }
        }
        self.nodes[node.index()].fanins.swap(a as usize, b as usize);
        Ok(())
    }

    /// Copies the transitive fanin cones of `roots` from `src` into `self`.
    ///
    /// `boundary` maps nets of `src` to already-existing nets of `self`;
    /// traversal stops at mapped nets. Source primary inputs that are not in
    /// `boundary` are resolved by label against this circuit's inputs. The
    /// returned map extends `boundary` with an entry for every cloned net
    /// (including the roots).
    ///
    /// This realizes the instantiation of spec logic required when a rewiring
    /// net comes from `C'` (paper §3.3: "its logic copy is instantiated in C").
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnmappedCloneInput`] when the cone depends on a source
    /// input that has no boundary entry and no like-named input here;
    /// [`NetlistError::UnknownNet`] for roots outside `src`.
    pub fn clone_cone(
        &mut self,
        src: &Circuit,
        roots: &[NetId],
        boundary: &HashMap<NetId, NetId>,
    ) -> Result<HashMap<NetId, NetId>, NetlistError> {
        let mut map = boundary.clone();
        let mut order: Vec<NetId> = Vec::new();
        // Iterative DFS computing a topological order of unmapped src nodes.
        let mut state: HashMap<NetId, u8> = HashMap::new(); // 1=open, 2=done
        let mut stack: Vec<(NetId, bool)> = roots.iter().rev().map(|&r| (r, false)).collect();
        for &r in roots {
            src.check_net(r).map_err(|_| NetlistError::UnknownNet(r))?;
        }
        while let Some((w, expanded)) = stack.pop() {
            if map.contains_key(&w) || state.get(&w) == Some(&2) {
                continue;
            }
            if expanded {
                state.insert(w, 2);
                order.push(w);
                continue;
            }
            state.insert(w, 1);
            stack.push((w, true));
            let node = src.node(w.source());
            if node.kind() == GateKind::Input {
                let name = node.name().unwrap_or("").to_string();
                match self.input_by_name(&name) {
                    Some(here) => {
                        map.insert(w, here);
                        stack.pop(); // cancel the post-visit
                        state.insert(w, 2);
                    }
                    None => return Err(NetlistError::UnmappedCloneInput { name }),
                }
                continue;
            }
            for &f in node.fanins() {
                if !map.contains_key(&f) && state.get(&f) != Some(&2) {
                    stack.push((f, false));
                }
            }
        }
        for w in order {
            let node = src.node(w.source());
            let new_net = match node.kind() {
                GateKind::Const0 => self.constant(false),
                GateKind::Const1 => self.constant(true),
                kind => {
                    let fanins: Vec<NetId> = node.fanins().iter().map(|f| map[f]).collect();
                    self.add_gate(kind, &fanins)?
                }
            };
            map.insert(w, new_net);
        }
        Ok(map)
    }

    /// Marks every node unreachable from the primary outputs as dead and
    /// returns the number of nodes swept.
    ///
    /// Primary inputs are never swept (ports must survive), and node ids
    /// remain stable.
    pub fn sweep(&mut self) -> usize {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|p| p.net.source()).collect();
        while let Some(n) = stack.pop() {
            if live[n.index()] {
                continue;
            }
            live[n.index()] = true;
            for &f in &self.nodes[n.index()].fanins {
                if !live[f.index()] {
                    stack.push(f.source());
                }
            }
        }
        for &i in &self.inputs {
            live[i.index()] = true;
        }
        let mut swept = 0;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !live[i] && !node.dead {
                node.dead = true;
                node.fanins.clear();
                swept += 1;
            }
        }
        if self.const0.is_some_and(|c| self.nodes[c.index()].dead) {
            self.const0 = None;
        }
        if self.const1.is_some_and(|c| self.nodes[c.index()].dead) {
            self.const1 = None;
        }
        swept
    }

    // ------------------------------------------------------------------
    // Evaluation & validation
    // ------------------------------------------------------------------

    /// Evaluates the circuit on one primary-input assignment, returning the
    /// output values in port order.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InputCountMismatch`] when `inputs` does not match the
    /// number of primary inputs; [`NetlistError::Cyclic`] when the circuit
    /// has a combinational cycle.
    pub fn eval(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let values = self.eval_nets(inputs)?;
        Ok(self.outputs.iter().map(|p| values[p.net.index()]).collect())
    }

    /// Evaluates every net of the circuit on one input assignment.
    ///
    /// The result is indexed by net; dead nets evaluate to `false`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`eval`](Circuit::eval).
    pub fn eval_nets(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::InputCountMismatch {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let order = topo::topo_order(self)?;
        let mut values = vec![false; self.nodes.len()];
        for (pos, &id) in self.inputs.iter().enumerate() {
            values[id.index()] = inputs[pos];
        }
        let mut buf: Vec<bool> = Vec::with_capacity(4);
        for id in order {
            let node = &self.nodes[id.index()];
            if node.kind() == GateKind::Input {
                continue;
            }
            buf.clear();
            buf.extend(node.fanins.iter().map(|f| values[f.index()]));
            values[id.index()] = node.kind().eval(&buf);
        }
        Ok(values)
    }

    /// Checks the well-formedness invariants of paper §3.1: legal arities,
    /// valid and live fanin references, acyclicity, and unique port labels.
    ///
    /// # Errors
    ///
    /// The first violated invariant is reported.
    pub fn check_well_formed(&self) -> Result<(), NetlistError> {
        let mut seen = std::collections::HashSet::new();
        for &i in &self.inputs {
            let name = self.nodes[i.index()].name.clone().unwrap_or_default();
            if !seen.insert(name.clone()) {
                return Err(NetlistError::DuplicateName(name));
            }
        }
        let mut seen_out = std::collections::HashSet::new();
        for p in &self.outputs {
            if !seen_out.insert(p.name.clone()) {
                return Err(NetlistError::DuplicateName(p.name.clone()));
            }
            self.check_net(p.net)?;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.dead {
                continue;
            }
            if node.kind() != GateKind::Input && !node.kind().accepts_arity(node.fanins.len()) {
                return Err(NetlistError::BadArity {
                    kind: node.kind(),
                    got: node.fanins.len(),
                });
            }
            for &f in &node.fanins {
                self.check_net(f)?;
                let _ = i;
            }
        }
        topo::topo_order(self)?;
        Ok(())
    }

    fn check_net(&self, w: NetId) -> Result<(), NetlistError> {
        match self.nodes.get(w.index()) {
            None => Err(NetlistError::UnknownNet(w)),
            Some(n) if n.dead => Err(NetlistError::DeadNode(w.source())),
            Some(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Circuit {
        let mut c = Circuit::new("fa");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let cin = c.add_input("cin");
        let ab = c.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let s = c.add_gate(GateKind::Xor, &[ab, cin]).unwrap();
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::And, &[ab, cin]).unwrap();
        let cout = c.add_gate(GateKind::Or, &[g1, g2]).unwrap();
        c.add_output("s", s);
        c.add_output("cout", cout);
        c
    }

    #[test]
    fn full_adder_truth_table() {
        let c = full_adder();
        for a in 0..2u8 {
            for b in 0..2u8 {
                for cin in 0..2u8 {
                    let out = c.eval(&[a == 1, b == 1, cin == 1]).unwrap();
                    let total = a + b + cin;
                    assert_eq!(out[0], total % 2 == 1, "sum at {a}{b}{cin}");
                    assert_eq!(out[1], total >= 2, "carry at {a}{b}{cin}");
                }
            }
        }
    }

    #[test]
    fn well_formed_ok() {
        full_adder().check_well_formed().unwrap();
    }

    #[test]
    fn arity_enforced() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        assert!(matches!(
            c.add_gate(GateKind::And, &[a]),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            c.add_gate(GateKind::Not, &[a, a]),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            c.add_gate(GateKind::Input, &[]),
            Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn unknown_net_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let bogus = NetId::from_index(99);
        assert_eq!(
            c.add_gate(GateKind::And, &[a, bogus]),
            Err(NetlistError::UnknownNet(bogus))
        );
    }

    #[test]
    fn constants_are_cached() {
        let mut c = Circuit::new("t");
        let k0 = c.constant(false);
        let k0b = c.constant(false);
        let k1 = c.constant(true);
        assert_eq!(k0, k0b);
        assert_ne!(k0, k1);
        assert_eq!(c.num_nodes(), 2);
    }

    #[test]
    fn rewire_changes_function() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        assert_eq!(c.eval(&[true, false]).unwrap(), vec![false]);
        // Rewire the AND's second pin from b to a: y becomes a AND a = a.
        c.rewire(Pin::gate(g.source(), 1), a).unwrap();
        assert_eq!(c.eval(&[true, false]).unwrap(), vec![true]);
    }

    #[test]
    fn rewire_rejects_cycle() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, &[g1, b]).unwrap();
        c.add_output("y", g2);
        // g1 feeding from g2 would form a cycle g1 -> g2 -> g1.
        let err = c.rewire(Pin::gate(g1.source(), 0), g2).unwrap_err();
        assert!(matches!(err, NetlistError::WouldCycle { .. }));
        // Self-loop also rejected.
        let err = c.rewire(Pin::gate(g1.source(), 0), g1).unwrap_err();
        assert!(matches!(err, NetlistError::WouldCycle { .. }));
        c.check_well_formed().unwrap();
    }

    #[test]
    fn output_rewire() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        c.set_output_net(0, b).unwrap();
        assert_eq!(c.eval(&[true, false]).unwrap(), vec![false]);
        assert_eq!(c.eval(&[false, true]).unwrap(), vec![true]);
    }

    #[test]
    fn sweep_removes_dangling() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let _g2 = c.add_gate(GateKind::Or, &[a, b]).unwrap(); // dangling
        c.add_output("y", g1);
        assert_eq!(c.sweep(), 1);
        assert_eq!(c.iter_live().count(), 3);
        c.check_well_formed().unwrap();
    }

    #[test]
    fn fanouts_enumerate_all_sinks() {
        let c = full_adder();
        let fo = c.fanouts();
        let a = c.input_by_name("a").unwrap();
        // `a` feeds the first xor and the first and.
        assert_eq!(fo[a.index()].len(), 2);
        // Total sinks = sum of fanin lengths + outputs.
        let total: usize = fo.iter().map(|v| v.len()).sum();
        let expect: usize = c
            .iter_live()
            .map(|id| c.node(id).fanins().len())
            .sum::<usize>()
            + c.num_outputs();
        assert_eq!(total, expect);
    }

    #[test]
    fn clone_cone_by_name() {
        let src = full_adder();
        let mut dst = Circuit::new("dst");
        dst.add_input("a");
        dst.add_input("b");
        dst.add_input("cin");
        let root = src.outputs()[1].net(); // cout
        let map = dst.clone_cone(&src, &[root], &HashMap::new()).unwrap();
        let here = map[&root];
        dst.add_output("cout", here);
        dst.check_well_formed().unwrap();
        for a in 0..2u8 {
            for b in 0..2u8 {
                for cin in 0..2u8 {
                    let v = [a == 1, b == 1, cin == 1];
                    assert_eq!(dst.eval(&v).unwrap()[0], src.eval(&v).unwrap()[1]);
                }
            }
        }
    }

    #[test]
    fn clone_cone_unmapped_input_fails() {
        let src = full_adder();
        let mut dst = Circuit::new("dst");
        dst.add_input("a"); // missing b, cin
        let root = src.outputs()[0].net();
        let err = dst.clone_cone(&src, &[root], &HashMap::new()).unwrap_err();
        assert!(matches!(err, NetlistError::UnmappedCloneInput { .. }));
    }

    #[test]
    fn clone_cone_with_boundary() {
        let src = full_adder();
        let mut dst = Circuit::new("dst");
        let x = dst.add_input("x");
        let y = dst.add_input("y");
        let z = dst.add_input("z");
        let mut boundary = HashMap::new();
        boundary.insert(src.input_by_name("a").unwrap(), x);
        boundary.insert(src.input_by_name("b").unwrap(), y);
        boundary.insert(src.input_by_name("cin").unwrap(), z);
        let root = src.outputs()[0].net();
        let map = dst.clone_cone(&src, &[root], &boundary).unwrap();
        dst.add_output("s", map[&root]);
        dst.check_well_formed().unwrap();
        let v = [true, true, false];
        assert_eq!(dst.eval(&v).unwrap()[0], src.eval(&v).unwrap()[0]);
    }

    #[test]
    fn duplicate_port_names_detected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let _b = c.add_input("a");
        c.add_output("y", a);
        assert!(matches!(
            c.check_well_formed(),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn input_count_mismatch() {
        let c = full_adder();
        assert!(matches!(
            c.eval(&[true, false]),
            Err(NetlistError::InputCountMismatch {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn set_gate_kind_flips_semantics_in_place() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        assert_eq!(c.eval(&[true, false]).unwrap(), vec![false]);
        c.set_gate_kind(g.source(), GateKind::Or).unwrap();
        assert_eq!(c.eval(&[true, false]).unwrap(), vec![true]);
        c.check_well_formed().unwrap();
        // Arity-incompatible kinds are rejected.
        assert!(matches!(
            c.set_gate_kind(g.source(), GateKind::Not),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            c.set_gate_kind(g.source(), GateKind::Input),
            Err(NetlistError::BadArity { .. })
        ));
        // Inputs cannot be turned into gates.
        assert!(c.set_gate_kind(a.source(), GateKind::And).is_err());
        // Unknown nodes are rejected.
        assert!(matches!(
            c.set_gate_kind(NodeId(99), GateKind::Or),
            Err(NetlistError::UnknownNode(_))
        ));
    }

    #[test]
    fn swap_fanins_flips_mux_branches() {
        let mut c = Circuit::new("t");
        let s = c.add_input("s");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let m = c.add_gate(GateKind::Mux, &[s, a, b]).unwrap();
        c.add_output("y", m);
        // sel=1 takes data-1 (b).
        assert_eq!(c.eval(&[true, true, false]).unwrap(), vec![false]);
        c.swap_fanins(m.source(), 1, 2).unwrap();
        assert_eq!(c.eval(&[true, true, false]).unwrap(), vec![true]);
        c.check_well_formed().unwrap();
        assert!(matches!(
            c.swap_fanins(m.source(), 0, 7),
            Err(NetlistError::UnknownPin(_))
        ));
        assert!(c.swap_fanins(NodeId(99), 0, 1).is_err());
    }

    #[test]
    fn mutations_reject_dead_nodes() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, &[a, b]).unwrap(); // dangling
        c.add_output("y", g1);
        c.sweep();
        assert!(matches!(
            c.set_gate_kind(g2.source(), GateKind::And),
            Err(NetlistError::DeadNode(_))
        ));
        assert!(matches!(
            c.swap_fanins(g2.source(), 0, 1),
            Err(NetlistError::DeadNode(_))
        ));
    }

    #[test]
    fn pin_net_reads_current_driver() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        assert_eq!(c.pin_net(Pin::gate(g.source(), 0)).unwrap(), a);
        assert_eq!(c.pin_net(Pin::output(0)).unwrap(), g);
        assert!(c.pin_net(Pin::gate(g.source(), 7)).is_err());
        assert!(c.pin_net(Pin::output(3)).is_err());
    }
}
