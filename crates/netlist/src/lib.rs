//! Boolean circuit data model for the syseco ECO engine.
//!
//! This crate provides the internal design representation shared by every
//! other crate in the workspace: a combinational [`Circuit`] made of typed
//! [gates](GateKind) connected by nets, together with the graph analyses the
//! rectification flow relies on (topological ordering, logic levels,
//! transitive fanin/fanout, cone extraction), fast 64-way parallel
//! [simulation](sim), [structural hashing](strash), and the mutation
//! primitives of rewire-based ECO: [`Circuit::rewire`] and
//! [`Circuit::clone_cone`].
//!
//! # Terminology (paper §3.1)
//!
//! * A **net** carries a value from its single *source* pin (a gate output or
//!   a primary input) to its *sink* pins (gate inputs or primary outputs).
//!   Every node's output is exactly one net, so [`NetId`] and [`NodeId`] are
//!   in 1:1 correspondence; the distinct types keep the two roles apart.
//! * A **pin** is a sink location: either input position `pos` of a gate or a
//!   primary-output port. Rectification points are pins.
//! * A circuit is **well-formed** when all pins are connected and the gate
//!   graph is acyclic; see [`Circuit::check_well_formed`].
//!
//! # Example
//!
//! ```
//! use eco_netlist::{Circuit, GateKind};
//!
//! # fn main() -> Result<(), eco_netlist::NetlistError> {
//! let mut c = Circuit::new("half_adder");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let sum = c.add_gate(GateKind::Xor, &[a, b])?;
//! let carry = c.add_gate(GateKind::And, &[a, b])?;
//! c.add_output("sum", sum);
//! c.add_output("carry", carry);
//! c.check_well_formed()?;
//! assert_eq!(c.eval(&[true, true])?, vec![false, true]);
//! # Ok(())
//! # }
//! ```

mod circuit;
mod error;
mod gate;
mod id;
pub mod io;
pub mod sim;
pub mod stats;
pub mod strash;
pub mod topo;

pub use circuit::{Circuit, Node, OutputPort};
pub use error::NetlistError;
pub use gate::GateKind;
pub use id::{NetId, NodeId, Pin};
pub use io::{read_blif, write_blif, write_dot, ParseBlifError};
pub use stats::CircuitStats;
