//! Error type for netlist operations.

use std::error::Error;
use std::fmt;

use crate::{NetId, NodeId, Pin};

/// Errors produced by circuit construction, mutation, and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A node id referenced a node that does not exist in this circuit.
    UnknownNode(NodeId),
    /// A net id referenced a net that does not exist in this circuit.
    UnknownNet(NetId),
    /// A pin referenced a nonexistent gate input position or output port.
    UnknownPin(Pin),
    /// A gate was created with a fanin count its kind does not accept.
    BadArity {
        /// The offending gate kind.
        kind: crate::GateKind,
        /// Number of fanins supplied.
        got: usize,
    },
    /// The requested mutation would create a combinational cycle.
    WouldCycle {
        /// Pin being rewired.
        pin: Pin,
        /// Net the pin was to be connected to.
        net: NetId,
    },
    /// The circuit contains a combinational cycle.
    Cyclic,
    /// An input/output label is used more than once.
    DuplicateName(String),
    /// An evaluation was given the wrong number of primary-input values.
    InputCountMismatch {
        /// Number of primary inputs the circuit has.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A node that was swept (dead) was used in an operation.
    DeadNode(NodeId),
    /// Cloning referenced a source whose support could not be mapped.
    UnmappedCloneInput {
        /// Name of the unmapped source-circuit input, if it had one.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetlistError::UnknownNet(w) => write!(f, "unknown net {w}"),
            NetlistError::UnknownPin(p) => write!(f, "unknown pin {p}"),
            NetlistError::BadArity { kind, got } => {
                write!(f, "gate kind {kind} does not accept {got} fanins")
            }
            NetlistError::WouldCycle { pin, net } => {
                write!(f, "rewiring pin {pin} to net {net} would create a cycle")
            }
            NetlistError::Cyclic => write!(f, "circuit contains a combinational cycle"),
            NetlistError::DuplicateName(name) => {
                write!(f, "duplicate port name {name:?}")
            }
            NetlistError::InputCountMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            NetlistError::DeadNode(n) => write!(f, "node {n} was swept and is dead"),
            NetlistError::UnmappedCloneInput { name } => {
                write!(f, "clone source input {name:?} has no mapping")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases: Vec<NetlistError> = vec![
            NetlistError::UnknownNode(NodeId::from_index(1)),
            NetlistError::UnknownNet(NetId::from_index(2)),
            NetlistError::UnknownPin(Pin::output(0)),
            NetlistError::BadArity {
                kind: GateKind::Not,
                got: 3,
            },
            NetlistError::WouldCycle {
                pin: Pin::gate(NodeId::from_index(0), 0),
                net: NetId::from_index(1),
            },
            NetlistError::Cyclic,
            NetlistError::DuplicateName("a".into()),
            NetlistError::InputCountMismatch {
                expected: 2,
                got: 3,
            },
            NetlistError::DeadNode(NodeId::from_index(4)),
            NetlistError::UnmappedCloneInput { name: "x".into() },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
