//! BLIF-style text serialization of circuits.
//!
//! The dialect is the structural subset of Berkeley BLIF extended with a
//! `.gate`-like single-line form for the typed gates of [`GateKind`]:
//!
//! ```text
//! .model half_adder
//! .inputs a b
//! .outputs sum carry
//! .gate xor w2 a b
//! .gate and w3 a b
//! .assign sum w2
//! .assign carry w3
//! .end
//! ```
//!
//! Net names are explicit; `.gate KIND OUT IN...` defines a gate driving
//! `OUT`, `.assign PORT NET` binds an output port, and `.const0`/`.const1`
//! name the constants. Round-tripping preserves structure exactly (modulo
//! dead nodes, which are not emitted).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::{Circuit, GateKind, NetId, NetlistError};

/// Errors produced when parsing the BLIF-style format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseBlifError {
    /// A line did not match any known directive.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The offending directive token.
        directive: String,
    },
    /// A directive had too few tokens.
    MissingTokens {
        /// 1-based line number.
        line: usize,
    },
    /// An unknown gate kind name.
    UnknownGateKind {
        /// 1-based line number.
        line: usize,
        /// The offending kind token.
        kind: String,
    },
    /// A net name was used before being defined.
    UndefinedNet {
        /// 1-based line number.
        line: usize,
        /// The undefined name.
        name: String,
    },
    /// A net name was defined twice.
    Redefined {
        /// 1-based line number.
        line: usize,
        /// The redefined name.
        name: String,
    },
    /// The resulting structure violated a netlist invariant.
    Netlist(NetlistError),
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBlifError::UnknownDirective { line, directive } => {
                write!(f, "line {line}: unknown directive {directive:?}")
            }
            ParseBlifError::MissingTokens { line } => {
                write!(f, "line {line}: missing tokens")
            }
            ParseBlifError::UnknownGateKind { line, kind } => {
                write!(f, "line {line}: unknown gate kind {kind:?}")
            }
            ParseBlifError::UndefinedNet { line, name } => {
                write!(f, "line {line}: undefined net {name:?}")
            }
            ParseBlifError::Redefined { line, name } => {
                write!(f, "line {line}: net {name:?} redefined")
            }
            ParseBlifError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for ParseBlifError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseBlifError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<NetlistError> for ParseBlifError {
    fn from(e: NetlistError) -> Self {
        ParseBlifError::Netlist(e)
    }
}

fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Input => "input",
        GateKind::Const0 => "const0",
        GateKind::Const1 => "const1",
        GateKind::Buf => "buf",
        GateKind::Not => "not",
        GateKind::And => "and",
        GateKind::Or => "or",
        GateKind::Nand => "nand",
        GateKind::Nor => "nor",
        GateKind::Xor => "xor",
        GateKind::Xnor => "xnor",
        GateKind::Mux => "mux",
    }
}

fn kind_from_name(name: &str) -> Option<GateKind> {
    Some(match name {
        "buf" => GateKind::Buf,
        "not" => GateKind::Not,
        "and" => GateKind::And,
        "or" => GateKind::Or,
        "nand" => GateKind::Nand,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        "mux" => GateKind::Mux,
        _ => return None,
    })
}

/// Serializes `circuit` to the BLIF-style text format.
///
/// Dead nodes are skipped; internal nets get synthetic `w<INDEX>` names.
pub fn write_blif(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", circuit.name()));
    let mut names: HashMap<NetId, String> = HashMap::new();
    let mut inputs_line = String::from(".inputs");
    for &id in circuit.inputs() {
        let name = circuit
            .node(id)
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("w{}", id.index()));
        inputs_line.push(' ');
        inputs_line.push_str(&name);
        names.insert(id.into(), name);
    }
    out.push_str(&inputs_line);
    out.push('\n');
    let mut outputs_line = String::from(".outputs");
    for port in circuit.outputs() {
        outputs_line.push(' ');
        outputs_line.push_str(port.name());
    }
    out.push_str(&outputs_line);
    out.push('\n');

    let order = crate::topo::topo_order(circuit).expect("well-formed circuit");
    for id in order {
        let node = circuit.node(id);
        let net: NetId = id.into();
        match node.kind() {
            GateKind::Input => {}
            GateKind::Const0 => {
                let name = format!("w{}", net.index());
                out.push_str(&format!(".const0 {name}\n"));
                names.insert(net, name);
            }
            GateKind::Const1 => {
                let name = format!("w{}", net.index());
                out.push_str(&format!(".const1 {name}\n"));
                names.insert(net, name);
            }
            kind => {
                let name = format!("w{}", net.index());
                let mut line = format!(".gate {} {name}", kind_name(kind));
                for f in node.fanins() {
                    line.push(' ');
                    line.push_str(&names[f]);
                }
                out.push_str(&line);
                out.push('\n');
                names.insert(net, name);
            }
        }
    }
    for port in circuit.outputs() {
        out.push_str(&format!(".assign {} {}\n", port.name(), names[&port.net()]));
    }
    out.push_str(".end\n");
    out
}

/// Renders `circuit` as a Graphviz dot graph (inputs as boxes, gates as
/// ellipses labelled with their kind, outputs as double circles).
pub fn write_dot(circuit: &Circuit) -> String {
    use std::fmt::Write;
    let mut out = format!("digraph \"{}\" {{\n  rankdir=LR;\n", circuit.name());
    for id in circuit.iter_live() {
        let node = circuit.node(id);
        match node.kind() {
            GateKind::Input => {
                let _ = writeln!(
                    out,
                    "  n{} [shape=box,label=\"{}\"];",
                    id.index(),
                    node.name().unwrap_or("?")
                );
            }
            kind => {
                let _ = writeln!(out, "  n{} [label=\"{}\"];", id.index(), kind);
            }
        }
        for f in node.fanins() {
            let _ = writeln!(out, "  n{} -> n{};", f.index(), id.index());
        }
    }
    for (i, port) in circuit.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  o{i} [shape=doublecircle,label=\"{}\"];\n  n{} -> o{i};",
            port.name(),
            port.net().index()
        );
    }
    out.push_str("}\n");
    out
}

/// Parses the BLIF-style text format produced by [`write_blif`].
///
/// # Errors
///
/// See [`ParseBlifError`]; the parser is strict (unknown directives and
/// undefined nets are rejected).
pub fn read_blif(text: &str) -> Result<Circuit, ParseBlifError> {
    let mut circuit = Circuit::new("unnamed");
    let mut nets: HashMap<String, NetId> = HashMap::new();
    let mut pending_outputs: Vec<String> = Vec::new();
    let mut assigns: Vec<(usize, String, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        match tokens[0] {
            ".model" => {
                if tokens.len() < 2 {
                    return Err(ParseBlifError::MissingTokens { line });
                }
                circuit = Circuit::new(tokens[1]);
                nets.clear();
            }
            ".inputs" => {
                for &name in &tokens[1..] {
                    if nets.contains_key(name) {
                        return Err(ParseBlifError::Redefined {
                            line,
                            name: name.to_string(),
                        });
                    }
                    let w = circuit.add_input(name);
                    nets.insert(name.to_string(), w);
                }
            }
            ".outputs" => {
                pending_outputs.extend(tokens[1..].iter().map(|s| s.to_string()));
            }
            ".const0" | ".const1" => {
                if tokens.len() < 2 {
                    return Err(ParseBlifError::MissingTokens { line });
                }
                let w = circuit.constant(tokens[0] == ".const1");
                if nets.insert(tokens[1].to_string(), w).is_some() {
                    return Err(ParseBlifError::Redefined {
                        line,
                        name: tokens[1].to_string(),
                    });
                }
            }
            ".gate" => {
                if tokens.len() < 4 {
                    return Err(ParseBlifError::MissingTokens { line });
                }
                let kind =
                    kind_from_name(tokens[1]).ok_or_else(|| ParseBlifError::UnknownGateKind {
                        line,
                        kind: tokens[1].to_string(),
                    })?;
                let out_name = tokens[2];
                let mut fanins = Vec::with_capacity(tokens.len() - 3);
                for &t in &tokens[3..] {
                    let w = nets
                        .get(t)
                        .copied()
                        .ok_or_else(|| ParseBlifError::UndefinedNet {
                            line,
                            name: t.to_string(),
                        })?;
                    fanins.push(w);
                }
                let w = circuit.add_gate(kind, &fanins)?;
                if nets.insert(out_name.to_string(), w).is_some() {
                    return Err(ParseBlifError::Redefined {
                        line,
                        name: out_name.to_string(),
                    });
                }
            }
            ".assign" => {
                if tokens.len() < 3 {
                    return Err(ParseBlifError::MissingTokens { line });
                }
                assigns.push((line, tokens[1].to_string(), tokens[2].to_string()));
            }
            ".end" => break,
            other => {
                return Err(ParseBlifError::UnknownDirective {
                    line,
                    directive: other.to_string(),
                })
            }
        }
    }
    for (line, port, net) in assigns {
        let w = nets
            .get(&net)
            .copied()
            .ok_or(ParseBlifError::UndefinedNet { line, name: net })?;
        circuit.add_output(port, w);
    }
    let _ = pending_outputs;
    circuit.check_well_formed()?;
    Ok(circuit)
}

impl FromStr for Circuit {
    type Err = ParseBlifError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        read_blif(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new("sample");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s = c.add_input("s");
        let k = c.constant(true);
        let g1 = c.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Mux, &[s, g1, k]).unwrap();
        let g3 = c.add_gate(GateKind::Nand, &[g2, a, b]).unwrap();
        c.add_output("y", g3);
        c.add_output("t", g1);
        c
    }

    #[test]
    fn roundtrip_preserves_function() {
        let original = sample();
        let text = write_blif(&original);
        let parsed: Circuit = text.parse().unwrap();
        assert_eq!(parsed.name(), "sample");
        assert_eq!(parsed.num_inputs(), original.num_inputs());
        assert_eq!(parsed.num_outputs(), original.num_outputs());
        for j in 0..8u8 {
            let assign = [(j & 1) == 1, (j & 2) == 2, (j & 4) == 4];
            assert_eq!(
                parsed.eval(&assign).unwrap(),
                original.eval(&assign).unwrap(),
                "pattern {j}"
            );
        }
    }

    #[test]
    fn dead_nodes_not_emitted() {
        let mut c = sample();
        let a = c.input_by_name("a").unwrap();
        let b = c.input_by_name("b").unwrap();
        let _dead = c.add_gate(GateKind::Or, &[a, b]).unwrap();
        c.sweep();
        let text = write_blif(&c);
        // Gate count in text matches live gates.
        let gate_lines = text.lines().filter(|l| l.starts_with(".gate")).count();
        assert_eq!(gate_lines, 3);
    }

    #[test]
    fn parse_rejects_unknown_directive() {
        let err = read_blif(".model x\n.bogus a\n.end\n").unwrap_err();
        assert!(matches!(
            err,
            ParseBlifError::UnknownDirective { line: 2, .. }
        ));
    }

    #[test]
    fn parse_rejects_undefined_net() {
        let err = read_blif(".model x\n.inputs a\n.gate and y a ghost\n.end\n").unwrap_err();
        assert!(matches!(err, ParseBlifError::UndefinedNet { .. }));
    }

    #[test]
    fn parse_rejects_redefinition() {
        let err = read_blif(".model x\n.inputs a b\n.gate and a a b\n.end\n").unwrap_err();
        assert!(matches!(err, ParseBlifError::Redefined { .. }));
    }

    #[test]
    fn parse_rejects_bad_kind() {
        let err = read_blif(".model x\n.inputs a b\n.gate frob y a b\n.end\n").unwrap_err();
        assert!(matches!(err, ParseBlifError::UnknownGateKind { .. }));
    }

    #[test]
    fn parse_rejects_bad_arity_via_netlist() {
        let err = read_blif(".model x\n.inputs a\n.gate mux y a a\n.end\n").unwrap_err();
        assert!(matches!(err, ParseBlifError::Netlist(_)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n.model x\n\n.inputs a\n# mid\n.gate not y a\n.assign o y\n.end\n";
        let c = read_blif(text).unwrap();
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.eval(&[false]).unwrap(), vec![true]);
    }

    #[test]
    fn dot_output_mentions_ports_and_gates() {
        let c = sample();
        let dot = write_dot(&c);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("xor"));
        assert!(dot.contains("shape=box"));
        // One edge per sink pin.
        let edges = dot.matches(" -> ").count();
        let stats = crate::CircuitStats::of(&c);
        assert_eq!(edges, stats.sinks);
    }

    #[test]
    fn error_display_nonempty() {
        let cases = [
            ParseBlifError::UnknownDirective {
                line: 1,
                directive: ".x".into(),
            },
            ParseBlifError::MissingTokens { line: 2 },
            ParseBlifError::UnknownGateKind {
                line: 3,
                kind: "q".into(),
            },
            ParseBlifError::UndefinedNet {
                line: 4,
                name: "n".into(),
            },
            ParseBlifError::Redefined {
                line: 5,
                name: "m".into(),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
