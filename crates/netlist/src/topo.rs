//! Graph analyses: topological order, logic levels, transitive fanin/fanout,
//! cones, and structural support.

use std::collections::HashSet;

use crate::{Circuit, GateKind, NetId, NetlistError, NodeId};

/// Returns the live nodes of `circuit` in topological order (fanins before
/// fanouts).
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`] when the circuit graph contains a
/// combinational cycle.
pub fn topo_order(circuit: &Circuit) -> Result<Vec<NodeId>, NetlistError> {
    let n = circuit.num_nodes();
    let mut order = Vec::with_capacity(n);
    // 0 = unvisited, 1 = on stack, 2 = done
    let mut state = vec![0u8; n];
    for seed in 0..n {
        let seed = NodeId::from_index(seed);
        if state[seed.index()] != 0 || circuit.node(seed).is_dead() {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(seed, 0)];
        state[seed.index()] = 1;
        while let Some(&mut (id, ref mut child)) = stack.last_mut() {
            let fanins = circuit.node(id).fanins();
            if *child < fanins.len() {
                let next = fanins[*child].source();
                *child += 1;
                match state[next.index()] {
                    0 => {
                        state[next.index()] = 1;
                        stack.push((next, 0));
                    }
                    1 => return Err(NetlistError::Cyclic),
                    _ => {}
                }
            } else {
                state[id.index()] = 2;
                order.push(id);
                stack.pop();
            }
        }
    }
    Ok(order)
}

/// Computes the logic level of every node: inputs and constants are level 0,
/// a gate is one more than its deepest fanin.
///
/// The result is indexed by node; dead nodes get level 0.
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`] for cyclic circuits.
pub fn levels(circuit: &Circuit) -> Result<Vec<u32>, NetlistError> {
    let order = topo_order(circuit)?;
    let mut lv = vec![0u32; circuit.num_nodes()];
    for id in order {
        let node = circuit.node(id);
        if node.kind() == GateKind::Input || node.kind().is_const() {
            continue;
        }
        lv[id.index()] = node
            .fanins()
            .iter()
            .map(|f| lv[f.index()])
            .max()
            .unwrap_or(0)
            + 1;
    }
    Ok(lv)
}

/// Returns the set of nodes in the transitive fanin of `roots` (the roots
/// themselves included), as a membership bitmap indexed by node.
pub fn tfi(circuit: &Circuit, roots: &[NodeId]) -> Vec<bool> {
    let mut seen = vec![false; circuit.num_nodes()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        for &f in circuit.node(id).fanins() {
            if !seen[f.index()] {
                stack.push(f.source());
            }
        }
    }
    seen
}

/// Whether `node` lies in the transitive fanin of `root` (inclusive).
pub fn tfi_contains(circuit: &Circuit, root: NodeId, node: NodeId) -> bool {
    if root == node {
        return true;
    }
    let mut seen = vec![false; circuit.num_nodes()];
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        if id == node {
            return true;
        }
        for &f in circuit.node(id).fanins() {
            if !seen[f.index()] {
                stack.push(f.source());
            }
        }
    }
    false
}

/// Returns the set of nodes in the transitive fanout of `roots` (inclusive),
/// as a membership bitmap indexed by node.
pub fn tfo(circuit: &Circuit, roots: &[NodeId]) -> Vec<bool> {
    let fanouts = circuit.fanouts();
    let mut seen = vec![false; circuit.num_nodes()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        for pin in &fanouts[id.index()] {
            if let Some(consumer) = pin.node() {
                if !seen[consumer.index()] {
                    stack.push(consumer);
                }
            }
        }
    }
    seen
}

/// The structural input support of `net`: indices (in primary-input order)
/// of the inputs its cone depends on.
pub fn support(circuit: &Circuit, net: NetId) -> HashSet<usize> {
    let seen = tfi(circuit, &[net.source()]);
    circuit
        .inputs()
        .iter()
        .enumerate()
        .filter(|(_, id)| seen[id.index()])
        .map(|(pos, _)| pos)
        .collect()
}

/// Primary-output port indices whose cones contain any of `nodes`.
pub fn outputs_depending_on(circuit: &Circuit, nodes: &[NodeId]) -> Vec<u32> {
    let reach = tfo(circuit, nodes);
    circuit
        .outputs()
        .iter()
        .enumerate()
        .filter(|(_, p)| reach[p.net().index()])
        .map(|(i, _)| i as u32)
        .collect()
}

/// Returns the nets of the transitive fanin cone of `root` (inclusive) in a
/// deterministic post-order: fanins before fanouts, children expanded in
/// fanin pin order, each net listed once at its first completion.
///
/// Unlike [`topo_order`], the order depends only on the *structure* of the
/// cone — two circuits that build the same cone with the same gate/pin
/// layout produce the same walk even when their [`NodeId`]s differ, which
/// is what makes a walk position usable as a stable cross-run reference to
/// a net (see the `eco-cache` signature scheme).
///
/// # Errors
///
/// Returns [`NetlistError::Cyclic`] when the cone contains a combinational
/// cycle.
pub fn cone_topo_order(circuit: &Circuit, root: NetId) -> Result<Vec<NetId>, NetlistError> {
    let mut order: Vec<NetId> = Vec::new();
    // 0 = unvisited, 1 = on stack, 2 = done — same scheme as topo_order,
    // but seeded from the root only and keyed by net.
    let mut state = vec![0u8; circuit.num_nodes()];
    let mut stack: Vec<(NetId, usize)> = vec![(root, 0)];
    state[root.index()] = 1;
    while let Some(&mut (w, ref mut child)) = stack.last_mut() {
        let fanins = circuit.node(w.source()).fanins();
        if *child < fanins.len() {
            let next = fanins[*child];
            *child += 1;
            match state[next.index()] {
                0 => {
                    state[next.index()] = 1;
                    stack.push((next, 0));
                }
                1 => return Err(NetlistError::Cyclic),
                _ => {}
            }
        } else {
            state[w.index()] = 2;
            order.push(w);
            stack.pop();
        }
    }
    Ok(order)
}

/// Number of live gates in the cone of `net` (inputs and constants excluded).
pub fn cone_size(circuit: &Circuit, net: NetId) -> usize {
    let seen = tfi(circuit, &[net.source()]);
    seen.iter()
        .enumerate()
        .filter(|&(i, &s)| {
            s && {
                let k = circuit.node(NodeId::from_index(i)).kind();
                k != GateKind::Input && !k.is_const()
            }
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, GateKind};

    fn chain(len: usize) -> (Circuit, Vec<NetId>) {
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let mut nets = vec![a, b];
        let mut prev = a;
        for _ in 0..len {
            prev = c.add_gate(GateKind::And, &[prev, b]).unwrap();
            nets.push(prev);
        }
        c.add_output("y", prev);
        (c, nets)
    }

    #[test]
    fn topo_order_respects_edges() {
        let (c, _) = chain(5);
        let order = topo_order(&c).unwrap();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for id in c.iter_live() {
            for f in c.node(id).fanins() {
                assert!(pos[&f.source()] < pos[&id], "{f} before {id}");
            }
        }
        assert_eq!(order.len(), c.iter_live().count());
    }

    #[test]
    fn levels_increase_along_chain() {
        let (c, nets) = chain(4);
        let lv = levels(&c).unwrap();
        assert_eq!(lv[nets[0].index()], 0);
        for (i, w) in nets.iter().enumerate().skip(2) {
            assert_eq!(lv[w.index()], (i - 1) as u32);
        }
    }

    #[test]
    fn tfi_and_support() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Or, &[d, d]).unwrap();
        c.add_output("y1", g1);
        c.add_output("y2", g2);
        let s1 = support(&c, g1);
        assert_eq!(s1, [0usize, 1].into_iter().collect());
        let s2 = support(&c, g2);
        assert_eq!(s2, [2usize].into_iter().collect());
        assert!(tfi_contains(&c, g1.source(), a.source()));
        assert!(!tfi_contains(&c, g2.source(), a.source()));
    }

    #[test]
    fn tfo_reaches_outputs() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = c.add_gate(GateKind::Or, &[b, b]).unwrap();
        c.add_output("y1", g2);
        c.add_output("y2", g3);
        let deps = outputs_depending_on(&c, &[a.source()]);
        assert_eq!(deps, vec![0]);
        let deps = outputs_depending_on(&c, &[b.source()]);
        assert_eq!(deps, vec![0, 1]);
    }

    #[test]
    fn cone_size_counts_gates_only() {
        let (c, nets) = chain(3);
        assert_eq!(cone_size(&c, *nets.last().unwrap()), 3);
        assert_eq!(cone_size(&c, nets[0]), 0);
    }

    #[test]
    fn cone_topo_order_is_structural() {
        // Two circuits with the same cone structure but different NodeId
        // layouts (the second has an unrelated gate inserted first) walk
        // their cones in the same relative order.
        let build = |pad: bool| {
            let mut c = Circuit::new("t");
            let a = c.add_input("a");
            let b = c.add_input("b");
            if pad {
                let _ = c.add_gate(GateKind::Or, &[a, b]).unwrap();
            }
            let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
            let g2 = c.add_gate(GateKind::Xor, &[g1, b]).unwrap();
            c.add_output("y", g2);
            (c, g2)
        };
        let (c1, r1) = build(false);
        let (c2, r2) = build(true);
        let w1 = cone_topo_order(&c1, r1).unwrap();
        let w2 = cone_topo_order(&c2, r2).unwrap();
        assert_eq!(w1.len(), w2.len());
        for (a, b) in w1.iter().zip(&w2) {
            assert_eq!(c1.node(a.source()).kind(), c2.node(b.source()).kind());
        }
        // Fanins precede fanouts and the root closes the walk.
        assert_eq!(*w1.last().unwrap(), r1);
        let pos: std::collections::HashMap<_, _> =
            w1.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &w in &w1 {
            for &f in c1.node(w.source()).fanins() {
                assert!(pos[&f] < pos[&w]);
            }
        }
    }

    #[test]
    fn dead_nodes_skipped_in_topo() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let _dangling = c.add_gate(GateKind::Or, &[a, b]).unwrap();
        c.add_output("y", g1);
        c.sweep();
        let order = topo_order(&c).unwrap();
        assert_eq!(order.len(), 3);
    }
}
