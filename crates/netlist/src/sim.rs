//! 64-way bit-parallel simulation.
//!
//! Each net is simulated over 64 input patterns at once by packing the
//! pattern values into a `u64` word. This is the workhorse behind error-
//! domain sampling and the rectification-utility heuristic (paper §4.3),
//! where many candidate nets must be compared over a set of error minterms.

use crate::topo::topo_order;
use crate::{Circuit, GateKind, NetlistError};

/// Simulates `circuit` over up to 64 parallel patterns.
///
/// `patterns[i]` packs the values of primary input `i` (in declaration
/// order): bit `j` is the value of input `i` under pattern `j`. The result is
/// indexed by net and packed the same way.
///
/// # Errors
///
/// [`NetlistError::InputCountMismatch`] when `patterns` does not match the
/// number of primary inputs, [`NetlistError::Cyclic`] for cyclic circuits.
///
/// # Example
///
/// ```
/// use eco_netlist::{Circuit, GateKind, sim};
///
/// # fn main() -> Result<(), eco_netlist::NetlistError> {
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let y = c.add_gate(GateKind::And, &[a, b])?;
/// c.add_output("y", y);
/// // Four patterns: (a,b) = 00, 10, 01, 11 in bits 0..4.
/// let words = sim::simulate64(&c, &[0b0110, 0b1010])?;
/// assert_eq!(words[y.index()] & 0b1111, 0b0010);
/// # Ok(())
/// # }
/// ```
pub fn simulate64(circuit: &Circuit, patterns: &[u64]) -> Result<Vec<u64>, NetlistError> {
    if patterns.len() != circuit.num_inputs() {
        return Err(NetlistError::InputCountMismatch {
            expected: circuit.num_inputs(),
            got: patterns.len(),
        });
    }
    let order = topo_order(circuit)?;
    let mut words = vec![0u64; circuit.num_nodes()];
    for (pos, &id) in circuit.inputs().iter().enumerate() {
        words[id.index()] = patterns[pos];
    }
    let mut buf: Vec<u64> = Vec::with_capacity(4);
    for id in order {
        let node = circuit.node(id);
        if node.kind() == GateKind::Input {
            continue;
        }
        buf.clear();
        buf.extend(node.fanins().iter().map(|f| words[f.index()]));
        words[id.index()] = node.kind().eval64(&buf);
    }
    Ok(words)
}

/// Simulates an arbitrary number of patterns, given as explicit assignments.
///
/// `assignments[j]` is the primary-input vector of pattern `j`. Returns one
/// word vector per 64-pattern block, as produced by [`simulate64`]; pattern
/// `j` lives in block `j / 64`, bit `j % 64`.
///
/// # Errors
///
/// Propagates [`simulate64`] errors; every assignment must have exactly
/// `circuit.num_inputs()` values or [`NetlistError::InputCountMismatch`] is
/// returned.
pub fn simulate_patterns(
    circuit: &Circuit,
    assignments: &[Vec<bool>],
) -> Result<Vec<Vec<u64>>, NetlistError> {
    let n = circuit.num_inputs();
    let mut blocks = Vec::new();
    for chunk in assignments.chunks(64) {
        let mut patterns = vec![0u64; n];
        for (j, a) in chunk.iter().enumerate() {
            if a.len() != n {
                return Err(NetlistError::InputCountMismatch {
                    expected: n,
                    got: a.len(),
                });
            }
            for (i, &v) in a.iter().enumerate() {
                if v {
                    patterns[i] |= 1u64 << j;
                }
            }
        }
        blocks.push(simulate64(circuit, &patterns)?);
    }
    Ok(blocks)
}

/// Extracts the boolean value of `bit` within pattern-block `words` for the
/// given net index.
#[inline]
pub fn word_bit(words: &[u64], net_index: usize, bit: usize) -> bool {
    (words[net_index] >> bit) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, GateKind};

    fn sample() -> Circuit {
        let mut c = Circuit::new("s");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Mux, &[d, g1, a]).unwrap();
        c.add_output("y", g2);
        c
    }

    #[test]
    fn parallel_matches_scalar() {
        let c = sample();
        // All 8 input combinations in bits 0..8.
        let mut patterns = vec![0u64; 3];
        #[allow(clippy::needless_range_loop)]
        for j in 0..8u64 {
            for i in 0..3 {
                if (j >> i) & 1 == 1 {
                    patterns[i] |= 1 << j;
                }
            }
        }
        let words = simulate64(&c, &patterns).unwrap();
        let ynet = c.outputs()[0].net();
        for j in 0..8 {
            let assign: Vec<bool> = (0..3).map(|i| (j >> i) & 1 == 1).collect();
            let scalar = c.eval(&assign).unwrap()[0];
            assert_eq!(word_bit(&words, ynet.index(), j), scalar, "pattern {j}");
        }
    }

    #[test]
    fn multi_block_patterns() {
        let c = sample();
        // 100 repeated assignments spanning two blocks.
        let assignments: Vec<Vec<bool>> = (0..100)
            .map(|j| vec![j % 2 == 0, j % 3 == 0, j % 5 == 0])
            .collect();
        let blocks = simulate_patterns(&c, &assignments).unwrap();
        assert_eq!(blocks.len(), 2);
        let ynet = c.outputs()[0].net();
        for (j, a) in assignments.iter().enumerate() {
            let scalar = c.eval(a).unwrap()[0];
            let got = word_bit(&blocks[j / 64], ynet.index(), j % 64);
            assert_eq!(got, scalar, "pattern {j}");
        }
    }

    #[test]
    fn input_count_checked() {
        let c = sample();
        assert!(simulate64(&c, &[0, 0]).is_err());
        assert!(simulate_patterns(&c, &[vec![true, false]]).is_err());
    }
}
