//! Typed identifiers for circuit elements.

use std::fmt;

/// Identifier of a node (primary input, constant, or gate) in a [`Circuit`].
///
/// Node ids are dense indices assigned in creation order; they are stable
/// across mutations because nodes are never physically removed (sweeping only
/// marks nodes dead).
///
/// [`Circuit`]: crate::Circuit
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from a raw index.
    ///
    /// Intended for serialization and test helpers; indices are only
    /// meaningful relative to the circuit they came from.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a net: the single output of the node with the same index.
///
/// A net connects its source (the node output) to every sink pin referring to
/// it. `NetId` and [`NodeId`] are in 1:1 correspondence; the conversion is
/// explicit to keep "a place in the graph" and "a signal" apart in APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Returns the raw index of this net.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a net id from a raw index (see [`NodeId::from_index`]).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }

    /// The node whose output pin is the source of this net.
    #[inline]
    pub fn source(self) -> NodeId {
        NodeId(self.0)
    }
}

impl From<NodeId> for NetId {
    #[inline]
    fn from(n: NodeId) -> Self {
        NetId(n.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A sink pin: a location where a net is consumed.
///
/// Pins are the unit of rectification in rewire-based ECO (paper §3.2): a
/// rectification point is a pin that gets disconnected from its driving net
/// and reconnected elsewhere. Both gate inputs and primary-output ports are
/// rectifiable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pin {
    /// Input position `pos` of gate `node`.
    Gate {
        /// The consuming gate.
        node: NodeId,
        /// Zero-based input position within the gate's fanin list.
        pos: u8,
    },
    /// Primary-output port `index` of the circuit.
    Output {
        /// Index into the circuit's output list.
        index: u32,
    },
}

impl Pin {
    /// Convenience constructor for a gate input pin.
    #[inline]
    pub fn gate(node: NodeId, pos: u8) -> Self {
        Pin::Gate { node, pos }
    }

    /// Convenience constructor for a primary-output pin.
    #[inline]
    pub fn output(index: u32) -> Self {
        Pin::Output { index }
    }

    /// Returns the consuming node if this is a gate pin.
    #[inline]
    pub fn node(self) -> Option<NodeId> {
        match self {
            Pin::Gate { node, .. } => Some(node),
            Pin::Output { .. } => None,
        }
    }
}

impl fmt::Display for Pin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pin::Gate { node, pos } => write!(f, "{node}.{pos}"),
            Pin::Output { index } => write!(f, "po{index}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_net_roundtrip() {
        let n = NodeId::from_index(7);
        let w: NetId = n.into();
        assert_eq!(w.index(), 7);
        assert_eq!(w.source(), n);
        assert_eq!(NetId::from_index(7), w);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
        assert_eq!(NetId::from_index(3).to_string(), "w3");
        assert_eq!(Pin::gate(NodeId::from_index(3), 1).to_string(), "n3.1");
        assert_eq!(Pin::output(2).to_string(), "po2");
    }

    #[test]
    fn pin_node_accessor() {
        assert_eq!(
            Pin::gate(NodeId::from_index(1), 0).node(),
            Some(NodeId::from_index(1))
        );
        assert_eq!(Pin::output(0).node(), None);
    }

    #[test]
    fn pin_ordering_is_total() {
        let mut pins = vec![
            Pin::output(1),
            Pin::gate(NodeId::from_index(2), 0),
            Pin::output(0),
            Pin::gate(NodeId::from_index(1), 1),
        ];
        pins.sort();
        assert_eq!(
            pins,
            vec![
                Pin::gate(NodeId::from_index(1), 1),
                Pin::gate(NodeId::from_index(2), 0),
                Pin::output(0),
                Pin::output(1),
            ]
        );
    }
}
