//! The filesystem seam of the store: real I/O by default, deterministic
//! fault I/O under test.
//!
//! [`Store`](crate::Store) performs every byte-level operation through the
//! small [`Vfs`] trait so that the chaos harness can inject the failure
//! modes a long-running ECO service actually sees — transient read errors,
//! short (torn) writes, and failed tempfile renames — without `unsafe`,
//! syscall interposition, or real disk faults. Production code pays one
//! virtual call per file operation; nothing else changes.
//!
//! Transient faults are *retried* by [`RetryPolicy`] with bounded
//! exponential backoff. The sleeper is injectable so tests drive the
//! backoff with a no-op clock and stay deterministic and fast.

use std::io;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The file operations [`Store`](crate::Store) needs, virtualized.
///
/// Implementations must be safe to share across threads; the fault
/// implementation keeps its own atomic call counters so a single plan can
/// be threaded through a multi-worker run.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (truncating) `path`, writes `bytes`, and syncs to disk.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Renames `from` to `to` (the atomic commit step).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Recursively creates `path` as a directory.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// Where in a call sequence an injected fault fires.
///
/// `at` is the 1-based index of the first failing call of that operation
/// kind; `burst` is how many consecutive calls fail from there
/// ([`u64::MAX`] = every call from `at` onward, modelling a permanent
/// fault). A burst of 1 models a transient blip a retry should absorb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoFaultSpec {
    /// Fail whole-file reads: `(at, burst)`.
    pub read_error_at: Option<(u64, u64)>,
    /// Truncate the written bytes to half and fail: `(at, burst)`.
    pub short_write_at: Option<(u64, u64)>,
    /// Fail the tempfile rename, leaving the tempfile behind: `(at, burst)`.
    pub rename_error_at: Option<(u64, u64)>,
}

impl IoFaultSpec {
    /// Whether this spec injects anything at all.
    pub fn is_noop(&self) -> bool {
        self.read_error_at.is_none()
            && self.short_write_at.is_none()
            && self.rename_error_at.is_none()
    }

    fn fires(window: Option<(u64, u64)>, call: u64) -> bool {
        match window {
            Some((at, burst)) => call >= at && call - at < burst,
            None => false,
        }
    }
}

/// A [`Vfs`] that injects the faults described by an [`IoFaultSpec`],
/// delegating clean calls to [`RealVfs`].
///
/// Call counters are per-operation and atomic, so the injection points are
/// deterministic for a deterministic call sequence (the store's single
/// scan/commit order) even when the store is shared behind a lock.
#[derive(Debug)]
pub struct FaultVfs {
    spec: IoFaultSpec,
    reads: AtomicU64,
    writes: AtomicU64,
    renames: AtomicU64,
    injected: AtomicU64,
}

impl FaultVfs {
    /// A fault VFS driven by `spec`.
    pub fn new(spec: IoFaultSpec) -> Self {
        FaultVfs {
            spec,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            renames: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// How many faults have fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn inject(&self, what: &str) -> io::Error {
        self.injected.fetch_add(1, Ordering::Relaxed);
        io::Error::other(format!("injected fault: {what}"))
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let call = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        if IoFaultSpec::fires(self.spec.read_error_at, call) {
            return Err(self.inject("read error"));
        }
        RealVfs.read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let call = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if IoFaultSpec::fires(self.spec.short_write_at, call) {
            // A torn write: half the payload lands on disk, then the
            // "device" fails. The half-written file must never be trusted.
            let _ = RealVfs.write_file(path, &bytes[..bytes.len() / 2]);
            return Err(self.inject("short write"));
        }
        RealVfs.write_file(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let call = self.renames.fetch_add(1, Ordering::Relaxed) + 1;
        if IoFaultSpec::fires(self.spec.rename_error_at, call) {
            // The tempfile stays behind — later opens must ignore it.
            return Err(self.inject("rename error"));
        }
        RealVfs.rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        RealVfs.create_dir_all(path)
    }
}

/// Bounded retry with exponential backoff for transient I/O errors.
///
/// `attempts` is the *total* number of tries (so `attempts: 3` retries
/// twice); waits double from `base_delay` between tries. The sleeper is a
/// plain closure so tests substitute a no-op and the schedule stays
/// deterministic under test clocks.
#[derive(Clone)]
pub struct RetryPolicy {
    /// Total tries per operation (minimum 1).
    pub attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    sleeper: Arc<dyn Fn(Duration) + Send + Sync>,
}

impl std::fmt::Debug for RetryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryPolicy")
            .field("attempts", &self.attempts)
            .field("base_delay", &self.base_delay)
            .finish_non_exhaustive()
    }
}

impl Default for RetryPolicy {
    /// Three tries, 10 ms → 20 ms backoff, real sleeps.
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(10),
            sleeper: Arc::new(std::thread::sleep),
        }
    }
}

impl RetryPolicy {
    /// The default schedule with a no-op sleeper — deterministic and
    /// instant, for tests and the chaos harness.
    pub fn no_sleep() -> Self {
        RetryPolicy {
            sleeper: Arc::new(|_| {}),
            ..RetryPolicy::default()
        }
    }

    /// A single try: any error is immediately permanent.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::no_sleep()
        }
    }

    /// Runs `op` up to [`RetryPolicy::attempts`] times.
    ///
    /// Returns the final result and the number of *retries* performed
    /// (0 when the first try succeeds; callers feed this into the
    /// `cache.retry` counter whether or not the operation ultimately
    /// succeeded).
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> (io::Result<T>, u64) {
        let attempts = self.attempts.max(1);
        let mut retries = 0u64;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) => {
                    if retries + 1 >= u64::from(attempts) {
                        return (Err(e), retries);
                    }
                    (self.sleeper)(self.base_delay * (1 << retries.min(16)) as u32);
                    retries += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eco-vfs-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fault_windows_fire_at_and_for_burst() {
        assert!(!IoFaultSpec::fires(None, 1));
        assert!(!IoFaultSpec::fires(Some((2, 1)), 1));
        assert!(IoFaultSpec::fires(Some((2, 1)), 2));
        assert!(!IoFaultSpec::fires(Some((2, 1)), 3));
        assert!(IoFaultSpec::fires(Some((2, u64::MAX)), 999));
        assert!(IoFaultSpec::default().is_noop());
    }

    #[test]
    fn fault_vfs_injects_read_and_short_write_and_rename() {
        let dir = tmp("inject");
        let file = dir.join("f");
        let vfs = FaultVfs::new(IoFaultSpec {
            read_error_at: Some((2, 1)),
            short_write_at: Some((2, u64::MAX)),
            rename_error_at: Some((1, 1)),
        });
        vfs.write_file(&file, b"0123456789").unwrap();
        assert_eq!(vfs.read(&file).unwrap(), b"0123456789");
        assert!(vfs.read(&file).is_err(), "second read fails");
        assert_eq!(vfs.read(&file).unwrap(), b"0123456789", "burst of 1");
        // Second write onward is torn: half the bytes land.
        assert!(vfs.write_file(&file, b"abcdefgh").is_err());
        assert_eq!(std::fs::read(&file).unwrap(), b"abcd");
        let to = dir.join("g");
        assert!(vfs.rename(&file, &to).is_err());
        assert!(file.exists() && !to.exists(), "failed rename left source");
        vfs.rename(&file, &to).unwrap();
        assert!(to.exists());
        assert_eq!(vfs.injected(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_absorbs_transient_errors_and_reports_counts() {
        let policy = RetryPolicy::no_sleep();
        let mut calls = 0;
        let (res, retries) = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::other("flaky"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(res.unwrap(), 3);
        assert_eq!(retries, 2);

        let (res, retries) = policy.run(|| Err::<(), _>(io::Error::other("dead")));
        assert!(res.is_err());
        assert_eq!(retries, 2, "attempts=3 means two retries then give up");

        let (res, retries) = RetryPolicy::none().run(|| Err::<(), _>(io::Error::other("dead")));
        assert!(res.is_err());
        assert_eq!(retries, 0);
    }

    #[test]
    fn retry_backoff_schedule_doubles() {
        let waits: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let w = waits.clone();
        let policy = RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(5),
            sleeper: Arc::new(move |d| w.lock().unwrap().push(d)),
        };
        let (_, retries) = policy.run(|| Err::<(), _>(io::Error::other("dead")));
        assert_eq!(retries, 3);
        assert_eq!(
            *waits.lock().unwrap(),
            vec![
                Duration::from_millis(5),
                Duration::from_millis(10),
                Duration::from_millis(20)
            ]
        );
    }
}
