//! The on-disk record store: append-only CRC-checked segments with atomic
//! tempfile-rename commits.
//!
//! # On-disk format
//!
//! A cache directory holds independent *segment* files named
//! `seg-<counter:016x>-<pid>-<token:08x>.ecc`. Each segment is:
//!
//! ```text
//! magic   7 bytes  b"SYECOCA"
//! version 1 byte   0x01
//! record* ...      until end of file
//! ```
//!
//! and each record is:
//!
//! ```text
//! kind    1 byte            caller-defined record namespace
//! key     16 bytes          Sig128 (hi, lo as little-endian u64)
//! len     4 bytes LE        payload length
//! payload len bytes
//! crc     4 bytes LE        CRC-32 (IEEE) over kind + key + len + payload
//! ```
//!
//! Segments are immutable once written: a commit writes every staged record
//! to a fresh tempfile and renames it into place, so readers never observe
//! a half-written segment.
//!
//! # Single writer per segment
//!
//! The concurrency invariant of the store is *single-writer-per-segment*:
//! every segment file is produced by exactly one commit of one `Store` and
//! never modified afterwards. Cross-*process* sharing was always safe (the
//! pid in the name keeps writers apart); cross-*session* sharing within one
//! process — many daemon jobs over one cache directory — needs one more
//! disambiguator, because two in-process stores opened over the same
//! directory observe the same `next_counter` and the same pid, and would
//! otherwise rename onto the same segment path, silently discarding one
//! commit. The guard is a process-global commit token
//! (`NEXT_COMMIT_TOKEN`) folded into every segment (and tempfile) name:
//! concurrent commits always land in distinct files, and the lexicographic
//! scan order (counter, then pid, then token) keeps later-token commits
//! overriding earlier ones deterministically when they carry the same key.
//! A store never observes records committed by its neighbours after its own
//! open — reuse across concurrent sessions is eventual (the next open sees
//! everything), which the always-re-verify policy upstream makes safe.
//!
//! # Corruption is a miss, never an error
//!
//! On open, every segment is scanned; a bad magic, a truncated record, or a
//! CRC mismatch stops the scan of *that segment* (records before the damage
//! survive — the file is append-only, so a valid prefix is still a valid
//! record sequence) and bumps [`Store::corrupt_segments`]. No read path
//! returns an error for bad cache bytes: a rectification must never fail
//! because its cache is bad.
//!
//! Transient failures are a different animal from bad bytes: a segment
//! that *cannot be read* (as opposed to one that reads fine but fails its
//! CRC) is retried under the store's [`RetryPolicy`] and, only if the
//! retries are exhausted, counted in [`Store::io_errors`] — never in
//! [`Store::corrupt_segments`]. All file operations go through a [`Vfs`]
//! so the fault-injection harness can exercise exactly these paths.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sig::Sig128;
use crate::vfs::{RealVfs, RetryPolicy, Vfs};

const MAGIC: &[u8; 7] = b"SYECOCA";
const VERSION: u8 = 1;
const HEADER_LEN: usize = 8;
/// kind + key + len
const RECORD_HEAD: usize = 1 + 16 + 4;
/// Refuse to stage or trust absurd payloads (a corrupt len would otherwise
/// ask for gigabytes).
const MAX_PAYLOAD: usize = 64 << 20;

/// Process-global commit disambiguator: two stores opened over the same
/// directory in one process share a pid and may share a counter, so each
/// commit additionally claims a unique token to keep segment (and
/// tempfile) names distinct. See "Single writer per segment" above.
static NEXT_COMMIT_TOKEN: AtomicU64 = AtomicU64::new(0);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut b = 0;
        while b < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            b += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// A content-addressed record store over one cache directory.
///
/// Records are keyed by `(Sig128, kind)` where `kind` namespaces record
/// types (the engine uses one kind for full-run memos, another for
/// per-output memos). Within a run, [`Store::put`] stages records in memory
/// and makes them visible to [`Store::get`] immediately; [`Store::commit`]
/// persists everything staged as one new segment.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    read_only: bool,
    map: HashMap<([u8; 16], u8), Vec<u8>>,
    staged: Vec<(Sig128, u8, Vec<u8>)>,
    corrupt_segments: u64,
    io_errors: u64,
    retries: u64,
    next_counter: u64,
    vfs: Arc<dyn Vfs>,
    retry: RetryPolicy,
}

impl Store {
    /// Opens (and for writable stores, creates) the cache directory and
    /// scans every segment in it, using real I/O and the default retry
    /// schedule. See [`Store::open_with`].
    ///
    /// # Errors
    ///
    /// I/O errors creating or listing the directory (callers typically
    /// degrade to running uncached).
    pub fn open(dir: &Path, read_only: bool) -> std::io::Result<Store> {
        Store::open_with(dir, read_only, Arc::new(RealVfs), RetryPolicy::default())
    }

    /// Opens the store over an explicit [`Vfs`] and [`RetryPolicy`].
    ///
    /// A read-only open of a missing directory yields an empty store.
    /// Corrupt segments (bad bytes) are counted in
    /// [`Store::corrupt_segments`]; segments that could not be read at all
    /// after retries are counted in [`Store::io_errors`]. Neither is an
    /// error — a miss is always safe.
    ///
    /// # Errors
    ///
    /// I/O errors creating or listing the directory itself (after
    /// retries).
    pub fn open_with(
        dir: &Path,
        read_only: bool,
        vfs: Arc<dyn Vfs>,
        retry: RetryPolicy,
    ) -> std::io::Result<Store> {
        let mut store = Store {
            dir: dir.to_path_buf(),
            read_only,
            map: HashMap::new(),
            staged: Vec::new(),
            corrupt_segments: 0,
            io_errors: 0,
            retries: 0,
            next_counter: 0,
            vfs,
            retry,
        };
        if !dir.exists() {
            if read_only {
                return Ok(store);
            }
            let (res, used) = store.retry.run(|| store.vfs.create_dir_all(dir));
            store.retries += used;
            res?;
        }
        let mut names: Vec<std::ffi::OsString> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name())
            .filter(|n| n.to_string_lossy().ends_with(".ecc"))
            .collect();
        // Later segments override earlier ones; zero-padded counters make
        // the lexicographic order the commit order.
        names.sort();
        for name in names {
            let text = name.to_string_lossy();
            if let Some(counter) = parse_counter(&text) {
                store.next_counter = store.next_counter.max(counter.saturating_add(1));
            }
            let path = dir.join(&name);
            let (res, used) = store.retry.run(|| store.vfs.read(&path));
            store.retries += used;
            match res {
                Ok(bytes) => {
                    if !store.scan_segment(&bytes) {
                        store.corrupt_segments += 1;
                    }
                }
                // Unreadable after retries: a transient-I/O miss, distinct
                // from corruption (the bytes were never seen).
                Err(_) => store.io_errors += 1,
            }
        }
        Ok(store)
    }

    /// Parses one segment, inserting every intact record. Returns `false`
    /// when the segment is damaged (bad header, truncation, or CRC
    /// mismatch); records preceding the damage are still inserted.
    fn scan_segment(&mut self, bytes: &[u8]) -> bool {
        if bytes.len() < HEADER_LEN || &bytes[..7] != MAGIC || bytes[7] != VERSION {
            return false;
        }
        let mut at = HEADER_LEN;
        while at < bytes.len() {
            if bytes.len() - at < RECORD_HEAD + 4 {
                return false; // truncated record head
            }
            let kind = bytes[at];
            let mut key = [0u8; 16];
            key.copy_from_slice(&bytes[at + 1..at + 17]);
            let len = u32::from_le_bytes(bytes[at + 17..at + 21].try_into().unwrap()) as usize;
            if len > MAX_PAYLOAD || bytes.len() - at - RECORD_HEAD < len + 4 {
                return false; // truncated or absurd payload
            }
            let body_end = at + RECORD_HEAD + len;
            let crc = u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().unwrap());
            if crc32(&bytes[at..body_end]) != crc {
                return false; // bit flip
            }
            self.map
                .insert((key, kind), bytes[at + RECORD_HEAD..body_end].to_vec());
            at = body_end + 4;
        }
        true
    }

    /// Looks up the payload stored under `(key, kind)`.
    pub fn get(&self, key: Sig128, kind: u8) -> Option<&[u8]> {
        self.map.get(&(key.to_bytes(), kind)).map(Vec::as_slice)
    }

    /// Stages a record for the next [`Store::commit`] and makes it visible
    /// to [`Store::get`] immediately. A no-op on read-only stores (the
    /// in-memory view still updates, so a run sees its own work).
    pub fn put(&mut self, key: Sig128, kind: u8, payload: Vec<u8>) {
        if payload.len() > MAX_PAYLOAD {
            return;
        }
        if !self.read_only {
            self.staged.push((key, kind, payload.clone()));
        }
        self.map.insert((key.to_bytes(), kind), payload);
    }

    /// Number of records staged but not yet committed.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Whether the store was opened read-only.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Number of damaged segments encountered on open.
    pub fn corrupt_segments(&self) -> u64 {
        self.corrupt_segments
    }

    /// Number of operations that failed permanently (all retries
    /// exhausted). These are transient-I/O casualties, not corruption.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Number of retry attempts performed (successful or not).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Total records visible (scanned + staged).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no records are visible.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The cache directory this store reads from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persists every staged record as one new segment, atomically: the
    /// segment is written to a tempfile and renamed into place (the
    /// write-then-rename pair is retried as a unit on transient errors).
    /// No-op when nothing is staged or the store is read-only.
    ///
    /// # Errors
    ///
    /// I/O errors writing the segment after retries; the staged records
    /// are kept so a later commit can try again, and the failure is also
    /// counted in [`Store::io_errors`]. A half-written tempfile may remain
    /// behind — opens ignore it (only `.ecc` files are scanned).
    pub fn commit(&mut self) -> std::io::Result<()> {
        if self.read_only || self.staged.is_empty() {
            return Ok(());
        }
        let pid = std::process::id();
        let counter = self.next_counter;
        let mut bytes = Vec::with_capacity(HEADER_LEN + self.staged.len() * 64);
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION);
        for (key, kind, payload) in &self.staged {
            let at = bytes.len();
            bytes.push(*kind);
            bytes.extend_from_slice(&key.to_bytes());
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(payload);
            let crc = crc32(&bytes[at..]);
            bytes.extend_from_slice(&crc.to_le_bytes());
        }
        let token = NEXT_COMMIT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{pid}-{counter:016x}-{token:08x}"));
        let fin = self
            .dir
            .join(format!("seg-{counter:016x}-{pid}-{token:08x}.ecc"));
        let (res, used) = self.retry.run(|| {
            // Retrying the pair from the top is safe: `write_file`
            // truncates, so a torn previous attempt is overwritten whole.
            self.vfs.write_file(&tmp, &bytes)?;
            self.vfs.rename(&tmp, &fin)
        });
        self.retries += used;
        if let Err(e) = res {
            self.io_errors += 1;
            return Err(e);
        }
        self.next_counter = counter + 1;
        self.staged.clear();
        Ok(())
    }
}

fn parse_counter(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?;
    let hex = rest.get(..16)?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::fingerprint_words;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eco-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_and_override() {
        let dir = tmp_dir("rt");
        let k1 = fingerprint_words(&[1]);
        let k2 = fingerprint_words(&[2]);
        {
            let mut s = Store::open(&dir, false).unwrap();
            s.put(k1, 1, vec![0xAA; 5]);
            s.put(k2, 2, vec![]);
            assert_eq!(s.get(k1, 1), Some(&[0xAA; 5][..])); // visible pre-commit
            s.commit().unwrap();
        }
        {
            let mut s = Store::open(&dir, false).unwrap();
            assert_eq!(s.corrupt_segments(), 0);
            assert_eq!(s.get(k1, 1), Some(&[0xAA; 5][..]));
            assert_eq!(s.get(k2, 2), Some(&[][..]));
            assert_eq!(s.get(k1, 2), None, "kind namespaces keys");
            // A later segment overrides the earlier record.
            s.put(k1, 1, vec![0xBB]);
            s.commit().unwrap();
        }
        let s = Store::open(&dir, true).unwrap();
        assert_eq!(s.get(k1, 1), Some(&[0xBB][..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_missing_dir_is_empty() {
        let dir = tmp_dir("ro");
        let s = Store::open(&dir, true).unwrap();
        assert!(s.is_empty());
        assert!(!dir.exists(), "read-only open must not create the dir");
    }

    #[test]
    fn read_only_put_does_not_write() {
        let dir = tmp_dir("rop");
        Store::open(&dir, false).unwrap(); // create dir
        let mut s = Store::open(&dir, true).unwrap();
        let k = fingerprint_words(&[3]);
        s.put(k, 1, vec![1, 2, 3]);
        assert_eq!(s.get(k, 1), Some(&[1, 2, 3][..]));
        assert_eq!(s.staged_len(), 0);
        s.commit().unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_counted_not_fatal() {
        let dir = tmp_dir("bad");
        let k1 = fingerprint_words(&[1]);
        let k2 = fingerprint_words(&[2]);
        {
            let mut s = Store::open(&dir, false).unwrap();
            s.put(k1, 1, vec![7; 32]);
            s.commit().unwrap();
            s.put(k2, 1, vec![9; 32]);
            s.commit().unwrap();
        }
        let seg: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(seg.len(), 2);
        // Bit-flip a payload byte of the first segment.
        let mut names = seg.clone();
        names.sort();
        let mut bytes = std::fs::read(&names[0]).unwrap();
        let at = bytes.len() - 10;
        bytes[at] ^= 0x40;
        std::fs::write(&names[0], &bytes).unwrap();
        // Truncate the second.
        let bytes = std::fs::read(&names[1]).unwrap();
        std::fs::write(&names[1], &bytes[..bytes.len() - 3]).unwrap();
        let s = Store::open(&dir, true).unwrap();
        assert_eq!(s.corrupt_segments(), 2);
        assert_eq!(s.get(k1, 1), None);
        assert_eq!(s.get(k2, 1), None);
        // Garbage header is also just a corrupt segment.
        std::fs::write(dir.join("seg-ffffffffffffffff-0.ecc"), b"nonsense").unwrap();
        let s = Store::open(&dir, true).unwrap();
        assert_eq!(s.corrupt_segments(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn valid_prefix_survives_tail_damage() {
        let dir = tmp_dir("prefix");
        let k1 = fingerprint_words(&[1]);
        let k2 = fingerprint_words(&[2]);
        {
            let mut s = Store::open(&dir, false).unwrap();
            s.put(k1, 1, vec![1; 8]);
            s.put(k2, 1, vec![2; 8]);
            s.commit().unwrap();
        }
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let bytes = std::fs::read(&seg).unwrap();
        // Cut into the second record: first must survive.
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();
        let s = Store::open(&dir, true).unwrap();
        assert_eq!(s.corrupt_segments(), 1);
        assert_eq!(s.get(k1, 1), Some(&[1; 8][..]));
        assert_eq!(s.get(k2, 1), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_read_errors_retry_then_count_as_io_not_corruption() {
        use crate::vfs::{FaultVfs, IoFaultSpec};
        let dir = tmp_dir("transient");
        let k1 = fingerprint_words(&[1]);
        {
            let mut s = Store::open(&dir, false).unwrap();
            s.put(k1, 1, vec![5; 8]);
            s.commit().unwrap();
        }
        // One transient blip on the first segment read: absorbed by retry.
        let vfs = Arc::new(FaultVfs::new(IoFaultSpec {
            read_error_at: Some((1, 1)),
            ..Default::default()
        }));
        let s = Store::open_with(&dir, true, vfs, RetryPolicy::no_sleep()).unwrap();
        assert_eq!(s.get(k1, 1), Some(&[5; 8][..]));
        assert_eq!(s.corrupt_segments(), 0);
        assert_eq!(s.io_errors(), 0);
        assert_eq!(s.retries(), 1);
        // A permanent read fault exhausts retries: an io_error, not
        // corruption, and still just a miss.
        let vfs = Arc::new(FaultVfs::new(IoFaultSpec {
            read_error_at: Some((1, u64::MAX)),
            ..Default::default()
        }));
        let s = Store::open_with(&dir, true, vfs, RetryPolicy::no_sleep()).unwrap();
        assert_eq!(s.get(k1, 1), None);
        assert_eq!(s.corrupt_segments(), 0);
        assert_eq!(s.io_errors(), 1);
        assert_eq!(s.retries(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_commit_retries_and_leaves_no_bad_segment() {
        use crate::vfs::{FaultVfs, IoFaultSpec};
        let dir = tmp_dir("torn");
        let k1 = fingerprint_words(&[1]);
        // Short write on the first attempt; the retry rewrites whole.
        let vfs = Arc::new(FaultVfs::new(IoFaultSpec {
            short_write_at: Some((1, 1)),
            ..Default::default()
        }));
        {
            let mut s = Store::open_with(&dir, false, vfs, RetryPolicy::no_sleep()).unwrap();
            s.put(k1, 1, vec![3; 16]);
            s.commit().unwrap();
            assert_eq!(s.retries(), 1);
            assert_eq!(s.io_errors(), 0);
        }
        let s = Store::open(&dir, true).unwrap();
        assert_eq!(s.get(k1, 1), Some(&[3; 16][..]));
        assert_eq!(s.corrupt_segments(), 0);

        // Permanent rename failure: commit errors, staged records are
        // kept, the orphan tempfile is ignored by later opens.
        let dir2 = tmp_dir("torn2");
        let vfs = Arc::new(FaultVfs::new(IoFaultSpec {
            rename_error_at: Some((1, u64::MAX)),
            ..Default::default()
        }));
        {
            let mut s = Store::open_with(&dir2, false, vfs, RetryPolicy::no_sleep()).unwrap();
            s.put(k1, 1, vec![4; 16]);
            assert!(s.commit().is_err());
            assert_eq!(s.io_errors(), 1);
            assert_eq!(s.staged_len(), 1, "staged survives for a later try");
        }
        let s = Store::open(&dir2, true).unwrap();
        assert_eq!(s.corrupt_segments(), 0, "orphan tempfile is not scanned");
        assert_eq!(s.get(k1, 1), None);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926, the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
