//! Canonical structural signatures over `eco-netlist` circuits.
//!
//! A signature is a 128-bit structural hash of a logic cone (or a whole
//! circuit) that is stable across runs and across [`eco_netlist::NodeId`]
//! renumbering:
//!
//! * primary inputs hash by **label**, not by position, so two cones over
//!   the same named inputs collide regardless of declaration order;
//! * commutative gates (`And`/`Or`/`Nand`/`Nor`/`Xor`/`Xnor`) fold their
//!   fanin hashes in sorted order — the AIG-style normalization that makes
//!   the hash input-permutation-stable — while `Mux`/`Buf`/`Not` keep pin
//!   order;
//! * the per-node pass runs over the same topological walk the engine's
//!   `SupportTable` uses ([`eco_netlist::topo::topo_order`]), so the cost
//!   is one linear sweep.
//!
//! Signatures address cache records; they are never trusted for
//! correctness. A collision (or a stale entry) surfaces as a SAT-rejected
//! reuse attempt, degrading performance only.

use eco_netlist::{topo, Circuit, GateKind, NetId, NetlistError};

/// A 128-bit structural signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sig128 {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl Sig128 {
    /// The all-zero signature (used as a fold seed, never as a real key).
    pub const ZERO: Sig128 = Sig128 { hi: 0, lo: 0 };

    /// Serializes to 16 little-endian bytes (`hi` first).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.hi.to_le_bytes());
        b[8..].copy_from_slice(&self.lo.to_le_bytes());
        b
    }

    /// Deserializes from [`Sig128::to_bytes`] layout.
    pub fn from_bytes(b: &[u8; 16]) -> Sig128 {
        Sig128 {
            hi: u64::from_le_bytes(b[..8].try_into().unwrap()),
            lo: u64::from_le_bytes(b[8..].try_into().unwrap()),
        }
    }

    /// Folds further words into this signature (order-sensitive).
    #[must_use]
    pub fn mix(self, word: u64) -> Sig128 {
        Sig128 {
            hi: splitmix64(self.hi ^ splitmix64(word ^ 0x9e37_79b9_7f4a_7c15)),
            lo: splitmix64(
                self.lo
                    .wrapping_add(splitmix64(word ^ 0x85eb_ca77_c2b2_ae63)),
            ),
        }
    }

    /// Combines several signatures into one composite key (order-sensitive).
    pub fn fold(parts: &[Sig128]) -> Sig128 {
        let mut acc = Sig128 {
            hi: 0x5851_f42d_4c95_7f2d,
            lo: 0x1405_7b7e_f767_814f,
        };
        for p in parts {
            acc = acc.mix(p.hi).mix(p.lo);
        }
        acc
    }
}

impl std::fmt::Display for Sig128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// SplitMix64 finalizer — the zero-dependency mixing primitive behind every
/// hash here.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a string (FNV-1a folded through splitmix64).
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// Hashes a slice of words into a [`Sig128`] — used for options
/// fingerprints and other non-structural key components.
pub fn fingerprint_words(words: &[u64]) -> Sig128 {
    let mut acc = Sig128 {
        hi: 0x2545_f491_4f6c_dd1d,
        lo: 0x27d4_eb2f_1656_67c5,
    };
    acc = acc.mix(words.len() as u64);
    for &w in words {
        acc = acc.mix(w);
    }
    acc
}

/// Stable per-kind hash code, independent of source declaration order.
fn kind_code(kind: GateKind) -> u64 {
    match kind {
        GateKind::Input => 0x11,
        GateKind::Const0 => 0x22,
        GateKind::Const1 => 0x33,
        GateKind::Buf => 0x44,
        GateKind::Not => 0x55,
        GateKind::And => 0x66,
        GateKind::Or => 0x77,
        GateKind::Nand => 0x88,
        GateKind::Nor => 0x99,
        GateKind::Xor => 0xaa,
        GateKind::Xnor => 0xbb,
        GateKind::Mux => 0xcc,
    }
}

/// Per-node structural hashes for every live node of `circuit`, indexed by
/// node. Dead nodes keep the zero hash.
///
/// # Errors
///
/// [`NetlistError::Cyclic`] on cyclic circuits.
pub fn node_hashes(circuit: &Circuit) -> Result<Vec<[u64; 2]>, NetlistError> {
    let order = topo::topo_order(circuit)?;
    let mut hashes = vec![[0u64; 2]; circuit.num_nodes()];
    for id in order {
        let node = circuit.node(id);
        let kind = node.kind();
        let k = kind_code(kind);
        hashes[id.index()] = match kind {
            GateKind::Input => {
                let name = hash_str(node.name().unwrap_or(""));
                [splitmix64(k ^ name), splitmix64(k.wrapping_add(name))]
            }
            GateKind::Const0 | GateKind::Const1 => [splitmix64(k), splitmix64(k ^ !0)],
            _ => {
                let mut fanins: Vec<[u64; 2]> =
                    node.fanins().iter().map(|f| hashes[f.index()]).collect();
                if kind.is_commutative() {
                    fanins.sort_unstable();
                }
                let mut h0 = splitmix64(k ^ 0xa076_1d64_78bd_642f);
                let mut h1 = splitmix64(k ^ 0xe703_7ed1_a0b4_28db);
                for [f0, f1] in fanins {
                    h0 = splitmix64(h0 ^ f0.wrapping_mul(0x8ebc_6af0_9c88_c6e3));
                    h1 = splitmix64(h1.wrapping_add(f1 ^ 0x5896_59dd_bc9e_6c39));
                }
                [h0, h1]
            }
        };
    }
    Ok(hashes)
}

/// The signature of the cone rooted at `root`, given precomputed
/// [`node_hashes`].
pub fn cone_sig(hashes: &[[u64; 2]], root: NetId) -> Sig128 {
    let [h0, h1] = hashes[root.index()];
    Sig128 { hi: h0, lo: h1 }.mix(0xc0de)
}

/// The signature of a whole circuit: every output cone in port order (with
/// its label), plus the primary-input labels in declaration order — the
/// full structural state a rectification run depends on.
///
/// # Errors
///
/// [`NetlistError::Cyclic`] on cyclic circuits.
pub fn circuit_sig(circuit: &Circuit) -> Result<Sig128, NetlistError> {
    let hashes = node_hashes(circuit)?;
    let mut acc = Sig128 {
        hi: 0x9e6c_63d0_a5f3_b1e7,
        lo: 0x6a09_e667_f3bc_c908,
    };
    acc = acc.mix(circuit.num_inputs() as u64);
    for &id in circuit.inputs() {
        acc = acc.mix(hash_str(circuit.node(id).name().unwrap_or("")));
    }
    acc = acc.mix(circuit.num_outputs() as u64);
    for port in circuit.outputs() {
        acc = acc.mix(hash_str(port.name()));
        let [h0, h1] = hashes[port.net().index()];
        acc = acc.mix(h0).mix(h1);
    }
    Ok(acc)
}

/// A cone signature plus the deterministic walk that produced it.
///
/// The walk ([`topo::cone_topo_order`]) lists every net of the cone once,
/// fanins first, expanding children in fanin pin order. Because the order
/// depends only on the cone's structure, the *position* of a net in the
/// walk is a stable cross-run reference: a later run over a structurally
/// identical cone re-materializes the same position to its own [`NetId`].
#[derive(Debug, Clone)]
pub struct ConeWalk {
    /// Structural signature of the cone.
    pub sig: Sig128,
    /// Cone nets in deterministic walk order (root last).
    pub order: Vec<NetId>,
}

impl ConeWalk {
    /// Builds the walk and signature for the cone of `root`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cyclic`] on cyclic cones.
    pub fn build(circuit: &Circuit, root: NetId) -> Result<ConeWalk, NetlistError> {
        let hashes = node_hashes(circuit)?;
        Ok(ConeWalk {
            sig: cone_sig(&hashes, root),
            order: topo::cone_topo_order(circuit, root)?,
        })
    }

    /// Builds the walk for `root` with already-computed [`node_hashes`],
    /// avoiding the full-circuit rehash when several cones of one circuit
    /// are walked.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cyclic`] on cyclic cones.
    pub fn with_hashes(
        circuit: &Circuit,
        hashes: &[[u64; 2]],
        root: NetId,
    ) -> Result<ConeWalk, NetlistError> {
        Ok(ConeWalk {
            sig: cone_sig(hashes, root),
            order: topo::cone_topo_order(circuit, root)?,
        })
    }

    /// The walk position of `net`, if it lies in this cone.
    pub fn position(&self, net: NetId) -> Option<u32> {
        self.order.iter().position(|&w| w == net).map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;

    fn xor_tree(pad: bool, swap: bool) -> (Circuit, NetId) {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        if pad {
            let _ = c.add_gate(GateKind::Nor, &[a, d]).unwrap();
        }
        let g1 = if swap {
            c.add_gate(GateKind::And, &[b, a]).unwrap()
        } else {
            c.add_gate(GateKind::And, &[a, b]).unwrap()
        };
        let g2 = c.add_gate(GateKind::Xor, &[g1, d]).unwrap();
        c.add_output("y", g2);
        (c, g2)
    }

    #[test]
    fn sig_stable_under_id_shift_and_commutation() {
        let (c1, r1) = xor_tree(false, false);
        let (c2, r2) = xor_tree(true, false); // shifted NodeIds
        let (c3, r3) = xor_tree(false, true); // swapped AND fanins
        let s1 = ConeWalk::build(&c1, r1).unwrap().sig;
        let s2 = ConeWalk::build(&c2, r2).unwrap().sig;
        let s3 = ConeWalk::build(&c3, r3).unwrap().sig;
        assert_eq!(s1, s2);
        assert_eq!(s1, s3);
    }

    #[test]
    fn sig_distinguishes_structure_and_names() {
        let (c1, r1) = xor_tree(false, false);
        let s1 = ConeWalk::build(&c1, r1).unwrap().sig;
        // Different gate kind.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::Or, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Xor, &[g1, d]).unwrap();
        c.add_output("y", g2);
        assert_ne!(ConeWalk::build(&c, g2).unwrap().sig, s1);
        // Different input name.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("bb");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Xor, &[g1, d]).unwrap();
        c.add_output("y", g2);
        assert_ne!(ConeWalk::build(&c, g2).unwrap().sig, s1);
        // Mux is order-sensitive: swapping data pins changes the hash.
        let mut c = Circuit::new("t");
        let s = c.add_input("s");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let m1 = c.add_gate(GateKind::Mux, &[s, a, b]).unwrap();
        c.add_output("y", m1);
        let mut c2 = Circuit::new("t");
        let s2 = c2.add_input("s");
        let a2 = c2.add_input("a");
        let b2 = c2.add_input("b");
        let m2 = c2.add_gate(GateKind::Mux, &[s2, b2, a2]).unwrap();
        c2.add_output("y", m2);
        assert_ne!(
            ConeWalk::build(&c, m1).unwrap().sig,
            ConeWalk::build(&c2, m2).unwrap().sig
        );
    }

    #[test]
    fn circuit_sig_covers_ports() {
        let (c1, _) = xor_tree(false, false);
        let s1 = circuit_sig(&c1).unwrap();
        // Identical rebuild agrees.
        let (c2, _) = xor_tree(false, false);
        assert_eq!(circuit_sig(&c2).unwrap(), s1);
        // Renaming an output changes the signature.
        let mut c = c1.clone();
        let net = c.outputs()[0].net();
        c.add_output("extra", net);
        assert_ne!(circuit_sig(&c).unwrap(), s1);
    }

    #[test]
    fn walk_positions_align_across_id_shift() {
        let (c1, r1) = xor_tree(false, false);
        let (c2, r2) = xor_tree(true, false);
        let w1 = ConeWalk::build(&c1, r1).unwrap();
        let w2 = ConeWalk::build(&c2, r2).unwrap();
        assert_eq!(w1.order.len(), w2.order.len());
        for pos in 0..w1.order.len() {
            let k1 = c1.node(w1.order[pos].source()).kind();
            let k2 = c2.node(w2.order[pos].source()).kind();
            assert_eq!(k1, k2, "walk position {pos}");
        }
        assert_eq!(w1.position(r1), Some(w1.order.len() as u32 - 1));
    }

    #[test]
    fn sig128_round_trips_and_folds() {
        let s = fingerprint_words(&[1, 2, 3]);
        assert_eq!(Sig128::from_bytes(&s.to_bytes()), s);
        assert_ne!(s, fingerprint_words(&[1, 2, 4]));
        assert_ne!(s, fingerprint_words(&[1, 2]));
        // Fold is order-sensitive.
        let a = fingerprint_words(&[7]);
        let b = fingerprint_words(&[9]);
        assert_ne!(Sig128::fold(&[a, b]), Sig128::fold(&[b, a]));
        assert_eq!(format!("{}", Sig128::ZERO), "0".repeat(32));
    }
}
