//! **eco-cache** — persistent, content-addressed caching for incremental
//! ECO rectification (re-exported as `syseco::cache`).
//!
//! ECO is iterative by nature: real flows rectify long chains of
//! near-identical revisions, yet a from-scratch run rediscovers the same
//! sampling domains, candidate rankings, and patches every time. This crate
//! provides the zero-dependency layers the engine's reuse policies are
//! built on:
//!
//! 1. [`sig`] — canonical structural **signatures**: input-permutation-
//!    stable 128-bit hashes of logic cones and circuits ([`Sig128`]), plus
//!    the deterministic cone walk ([`ConeWalk`]) whose positions serve as
//!    stable cross-run net references.
//! 2. [`store`] — the on-disk **record store** ([`Store`]): append-only
//!    CRC-checked segments, atomic tempfile-rename commits, versioned
//!    schema, and corruption-as-miss semantics.
//! 3. [`vfs`] — the **filesystem seam** ([`Vfs`]): real I/O in production,
//!    deterministic injected faults under test, and the bounded
//!    retry-with-backoff policy ([`RetryPolicy`]) that absorbs transient
//!    errors.
//!
//! What to *do* with a hit — warm-starting sampling domains, replaying
//! memoized patches, and the re-verification invariant that makes stale
//! entries harmless — lives in the `syseco` core crate; this crate knows
//! nothing about rectification, only about keys and bytes.

pub mod sig;
pub mod store;
pub mod vfs;

pub use sig::{circuit_sig, cone_sig, fingerprint_words, hash_str, node_hashes, ConeWalk, Sig128};
pub use store::{crc32, Store};
pub use vfs::{FaultVfs, IoFaultSpec, RealVfs, RetryPolicy, Vfs};

/// How a run uses its cache directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// No cache: nothing is read, nothing is written, no files are created.
    Off,
    /// Read-only: hits are reused, but nothing is written back (and a
    /// missing cache directory is not created).
    ReadOnly,
    /// Read-write: hits are reused and new results are committed.
    #[default]
    ReadWrite,
}

impl CacheMode {
    /// Whether this mode touches the store at all.
    pub fn is_enabled(self) -> bool {
        !matches!(self, CacheMode::Off)
    }

    /// Whether the store must be opened without write-back.
    pub fn is_read_only(self) -> bool {
        matches!(self, CacheMode::ReadOnly)
    }
}

impl std::str::FromStr for CacheMode {
    type Err = String;

    /// Parses the CLI spelling: `off`, `ro`, or `rw`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(CacheMode::Off),
            "ro" => Ok(CacheMode::ReadOnly),
            "rw" => Ok(CacheMode::ReadWrite),
            other => Err(format!(
                "unknown cache mode {other:?} (expected off, ro, or rw)"
            )),
        }
    }
}

impl std::fmt::Display for CacheMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheMode::Off => "off",
            CacheMode::ReadOnly => "ro",
            CacheMode::ReadWrite => "rw",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_mode_parses_and_displays() {
        for (text, mode) in [
            ("off", CacheMode::Off),
            ("ro", CacheMode::ReadOnly),
            ("rw", CacheMode::ReadWrite),
        ] {
            assert_eq!(text.parse::<CacheMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), text);
        }
        assert!("r/w".parse::<CacheMode>().is_err());
        assert!(CacheMode::ReadOnly.is_enabled());
        assert!(!CacheMode::Off.is_enabled());
        assert!(CacheMode::ReadOnly.is_read_only());
        assert!(!CacheMode::ReadWrite.is_read_only());
        assert_eq!(CacheMode::default(), CacheMode::ReadWrite);
    }
}
