//! Regression tests for concurrent read-write use of one cache directory
//! by multiple in-process stores (the daemon's sharing shape, DESIGN.md
//! §15). The invariant under test is *single-writer-per-segment*: commits
//! from distinct store sessions must never rename onto the same segment
//! path, even when the sessions were opened at the same `next_counter`
//! inside the same process.

use std::path::PathBuf;
use std::sync::{Arc, Barrier};

use eco_cache::{fingerprint_words, Store};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("eco-cache-concurrent-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Two stores opened back-to-back observe the same segment counter; before
/// the per-commit token their commits collided on one file name and the
/// second rename silently discarded the first commit's records.
#[test]
fn same_counter_sessions_commit_to_distinct_segments() {
    let dir = tmp_dir("samectr");
    let k1 = fingerprint_words(&[1]);
    let k2 = fingerprint_words(&[2]);
    let mut a = Store::open(&dir, false).unwrap();
    let mut b = Store::open(&dir, false).unwrap();
    a.put(k1, 1, vec![0xA1; 8]);
    b.put(k2, 1, vec![0xB2; 8]);
    a.commit().unwrap();
    b.commit().unwrap();
    let segments = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(segments, 2, "each session's commit is its own segment");
    let fresh = Store::open(&dir, true).unwrap();
    assert_eq!(fresh.corrupt_segments(), 0);
    assert_eq!(fresh.get(k1, 1), Some(&[0xA1; 8][..]));
    assert_eq!(fresh.get(k2, 1), Some(&[0xB2; 8][..]));
    let _ = std::fs::remove_dir_all(&dir);
}

/// When two same-counter sessions write the *same* key, the scan order
/// (counter, pid, commit token) makes the later commit win
/// deterministically on the next open.
#[test]
fn same_key_overrides_resolve_by_commit_order() {
    let dir = tmp_dir("override");
    let k = fingerprint_words(&[7]);
    let mut a = Store::open(&dir, false).unwrap();
    let mut b = Store::open(&dir, false).unwrap();
    a.put(k, 1, vec![0xAA]);
    a.commit().unwrap();
    b.put(k, 1, vec![0xBB]);
    b.commit().unwrap();
    let fresh = Store::open(&dir, true).unwrap();
    assert_eq!(
        fresh.get(k, 1),
        Some(&[0xBB][..]),
        "the later commit token must override"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Many writer threads, each with its own store session over one
/// directory, commit concurrently while readers re-open the directory
/// mid-flight. Every committed record must survive, no segment may be
/// corrupt, and readers must never error.
#[test]
fn concurrent_sessions_share_one_directory_losslessly() {
    const WRITERS: usize = 4;
    const ROUNDS: usize = 5;
    let dir = tmp_dir("threads");
    Store::open(&dir, false).unwrap(); // create the directory once
    let barrier = Arc::new(Barrier::new(WRITERS + 1));
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let dir = dir.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut store = Store::open(&dir, false).unwrap();
                barrier.wait();
                for round in 0..ROUNDS {
                    let key = fingerprint_words(&[w as u64, round as u64]);
                    store.put(key, 3, vec![w as u8; round + 1]);
                    store.commit().unwrap();
                }
            });
        }
        // A reader racing the writers: opens must never fail and must
        // never report corruption, whatever subset of segments exists.
        let reader_dir = dir.clone();
        let reader_barrier = Arc::clone(&barrier);
        scope.spawn(move || {
            reader_barrier.wait();
            for _ in 0..10 {
                let store = Store::open(&reader_dir, true).unwrap();
                assert_eq!(store.corrupt_segments(), 0);
                assert_eq!(store.io_errors(), 0);
                std::thread::yield_now();
            }
        });
    });
    let fresh = Store::open(&dir, true).unwrap();
    assert_eq!(fresh.corrupt_segments(), 0);
    for w in 0..WRITERS {
        for round in 0..ROUNDS {
            let key = fingerprint_words(&[w as u64, round as u64]);
            assert_eq!(
                fresh.get(key, 3),
                Some(&vec![w as u8; round + 1][..]),
                "writer {w} round {round} record lost"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
