//! Property tests of the structural signature: [`circuit_sig`] must not
//! depend on construction accidents — the order gates were added in, the
//! numeric values of the net ids, dead nodes, or the fanin order of
//! commutative gates — while still separating genuinely different logic.

use eco_cache::sig::circuit_sig;
use eco_netlist::{Circuit, GateKind, NetId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A construction-order-free description of a DAG. Fanin entries index
/// `0..inputs` for primary inputs and `inputs + j` for gate `j`, so gate
/// `j` may only reference earlier gates — every permutation that respects
/// that partial order builds the same circuit.
#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    gates: Vec<(GateKind, Vec<usize>)>,
    /// Recipe-net index driving each output port `out{i}`.
    outputs: Vec<usize>,
}

fn random_recipe(seed: u64) -> Recipe {
    let mut rng = SmallRng::seed_from_u64(seed);
    let inputs = rng.gen_range(2..=5);
    let num_gates = rng.gen_range(3..=12);
    let mut gates = Vec::with_capacity(num_gates);
    for g in 0..num_gates {
        let available = inputs + g;
        let kind = *[
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
            GateKind::Mux,
        ]
        .get(rng.gen_range(0..9))
        .unwrap();
        let arity = match kind {
            GateKind::Not | GateKind::Buf => 1,
            GateKind::Mux => 3,
            _ => rng.gen_range(2..=3),
        };
        let fanins = (0..arity).map(|_| rng.gen_range(0..available)).collect();
        gates.push((kind, fanins));
    }
    // The last gate always drives the first output, so at least one cone
    // covers fresh structure; further outputs tap random nets.
    let mut outputs = vec![inputs + num_gates - 1];
    for _ in 0..rng.gen_range(0..=2) {
        outputs.push(rng.gen_range(0..inputs + num_gates));
    }
    Recipe {
        inputs,
        gates,
        outputs,
    }
}

/// A random topological linear extension: any order in which every gate
/// follows the gates it reads from.
fn random_gate_order(recipe: &Recipe, rng: &mut SmallRng) -> Vec<usize> {
    let n = recipe.gates.len();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let ready: Vec<usize> = (0..n)
            .filter(|&g| {
                !placed[g]
                    && recipe.gates[g]
                        .1
                        .iter()
                        .all(|&f| f < recipe.inputs || placed[f - recipe.inputs])
            })
            .collect();
        let g = ready[rng.gen_range(0..ready.len())];
        placed[g] = true;
        order.push(g);
    }
    order
}

/// Builds the recipe with gates added in `order`, optionally interleaving
/// dead junk gates (shifting every subsequent net id) and optionally
/// reversing the fanin lists of commutative gates.
fn build(recipe: &Recipe, order: &[usize], junk: bool, reverse_commutative: bool) -> Circuit {
    build_named(recipe, order, junk, reverse_commutative, "in0")
}

fn build_named(
    recipe: &Recipe,
    order: &[usize],
    junk: bool,
    reverse_commutative: bool,
    first_input: &str,
) -> Circuit {
    let mut c = Circuit::new("prop");
    let mut nets: Vec<Option<NetId>> = vec![None; recipe.inputs + recipe.gates.len()];
    for (i, slot) in nets.iter_mut().enumerate().take(recipe.inputs) {
        let name = if i == 0 {
            first_input.to_string()
        } else {
            format!("in{i}")
        };
        *slot = Some(c.add_input(&name));
    }
    for &g in order {
        if junk {
            // Dead by construction: nothing downstream ever reads it.
            let _ = c.add_gate(GateKind::Not, &[nets[0].unwrap()]).unwrap();
        }
        let (kind, fanins) = &recipe.gates[g];
        let mut resolved: Vec<NetId> = fanins.iter().map(|&f| nets[f].unwrap()).collect();
        if reverse_commutative && kind.is_commutative() {
            resolved.reverse();
        }
        nets[recipe.inputs + g] = Some(c.add_gate(*kind, &resolved).unwrap());
    }
    for (i, &net) in recipe.outputs.iter().enumerate() {
        c.add_output(format!("out{i}"), nets[net].unwrap());
    }
    c.check_well_formed().unwrap();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sig_is_invariant_under_construction_order_and_renumbering(seed in any::<u64>()) {
        let recipe = random_recipe(seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0DE8);
        let natural: Vec<usize> = (0..recipe.gates.len()).collect();
        let reference = circuit_sig(&build(&recipe, &natural, false, false)).unwrap();

        // Gate-order permutation: a random linear extension.
        let permuted = random_gate_order(&recipe, &mut rng);
        prop_assert_eq!(
            circuit_sig(&build(&recipe, &permuted, false, false)).unwrap(),
            reference,
            "gate insertion order must not matter"
        );

        // Net renumbering: junk gates shift every net id; dead nodes must
        // not contribute, swept or not.
        let mut renumbered = build(&recipe, &permuted, true, false);
        prop_assert_eq!(circuit_sig(&renumbered).unwrap(), reference,
            "net ids and dead nodes must not matter");
        renumbered.sweep();
        prop_assert_eq!(circuit_sig(&renumbered).unwrap(), reference,
            "sweeping dead nodes must not matter either");

        // Commutative fanin order.
        prop_assert_eq!(
            circuit_sig(&build(&recipe, &natural, false, true)).unwrap(),
            reference,
            "fanin order of commutative gates must not matter"
        );
    }

    #[test]
    fn sig_separates_a_single_gate_flip(seed in any::<u64>()) {
        let recipe = random_recipe(seed);
        let natural: Vec<usize> = (0..recipe.gates.len()).collect();
        let reference = circuit_sig(&build(&recipe, &natural, false, false)).unwrap();

        // Flip the kind of the gate driving out0 (arity-compatible swap).
        let mut flipped = recipe.clone();
        let last = flipped.gates.len() - 1;
        let kind = &mut flipped.gates[last].0;
        *kind = match *kind {
            GateKind::And => GateKind::Or,
            GateKind::Or => GateKind::And,
            GateKind::Nand => GateKind::Nor,
            GateKind::Nor => GateKind::Nand,
            GateKind::Xor => GateKind::Xnor,
            GateKind::Xnor => GateKind::Xor,
            GateKind::Not => GateKind::Buf,
            GateKind::Buf => GateKind::Not,
            // And accepts the mux's three fanins; different function.
            GateKind::Mux => GateKind::And,
            other => other,
        };
        prop_assert_ne!(
            circuit_sig(&build(&flipped, &natural, false, false)).unwrap(),
            reference,
            "a functional edit in an output cone must change the signature"
        );
    }

    #[test]
    fn sig_depends_on_port_names(seed in any::<u64>()) {
        let recipe = random_recipe(seed);
        let natural: Vec<usize> = (0..recipe.gates.len()).collect();
        let reference = build(&recipe, &natural, false, false);
        let renamed = build_named(&recipe, &natural, false, false, "other");
        prop_assert_ne!(
            circuit_sig(&renamed).unwrap(),
            circuit_sig(&reference).unwrap(),
            "input labels are part of the key"
        );
    }
}
