//! A realistic word-level ECO: a small ALU whose flag logic is revised.
//!
//! The implementation is produced by the heavy optimization pipeline (as a
//! production netlist would be), so it is structurally dissimilar from the
//! revised specification — the regime the paper targets. Both baselines and
//! syseco run on the same case, printing a Table-2-style comparison row.
//!
//! ```text
//! cargo run --release -p syseco --example alu_eco
//! ```

use eco_netlist::CircuitStats;
use eco_synth::lower::synthesize;
use eco_synth::opt::{optimize, OptOptions};
use eco_synth::rtl::{ReduceOp, RtlModule, WordExpr as E};
use syseco::baseline::{cone, deltasyn};
use syseco::{verify_rectification, EcoOptions, Syseco};

const WIDTH: u32 = 8;

/// An 8-bit ALU slice: add / and / xor / pass selected by 2 control bits,
/// with zero and parity flags.
fn alu(revised: bool) -> RtlModule {
    let mut m = RtlModule::new(if revised { "alu_spec" } else { "alu_impl" });
    m.add_input("a", WIDTH);
    m.add_input("b", WIDTH);
    m.add_input("op0", 1);
    m.add_input("op1", 1);

    m.add_signal("sum", E::add(E::input("a"), E::input("b")));
    m.add_signal("conj", E::and(E::input("a"), E::input("b")));
    m.add_signal("parity_word", E::xor(E::input("a"), E::input("b")));
    m.add_signal(
        "lo_mux",
        E::mux(E::input("op0"), E::signal("sum"), E::signal("conj")),
    );
    m.add_signal(
        "hi_mux",
        E::mux(E::input("op0"), E::signal("parity_word"), E::input("a")),
    );
    m.add_signal(
        "result",
        E::mux(E::input("op1"), E::signal("lo_mux"), E::signal("hi_mux")),
    );

    // Flags. The revision fixes the zero flag: it must consider the result,
    // not only the low nibble, and the parity flag gains an enable.
    if revised {
        m.add_signal("zero", E::not(E::reduce(ReduceOp::Or, E::signal("result"))));
        m.add_signal(
            "parity",
            E::and(
                E::reduce(ReduceOp::Xor, E::signal("result")),
                E::not(E::input("op1")),
            ),
        );
    } else {
        m.add_signal(
            "zero",
            E::not(E::reduce(ReduceOp::Or, E::slice(E::signal("result"), 0, 3))),
        );
        m.add_signal("parity", E::reduce(ReduceOp::Xor, E::signal("result")));
    }

    m.add_output("result", E::signal("result"));
    m.add_output("zero", E::signal("zero"));
    m.add_output("parity", E::signal("parity"));
    m
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Implementation: synthesize the ORIGINAL spec, then optimize heavily.
    let mut implementation = synthesize(&alu(false))?;
    let report = optimize(&mut implementation, &OptOptions::heavy(2024))?;
    println!(
        "implementation (optimized {} -> {} gates): {}",
        report.gates_before,
        report.gates_after,
        CircuitStats::of(&implementation)
    );

    // Revised specification: lightweight synthesis only.
    let spec = synthesize(&alu(true))?;
    println!("revised spec: {}", CircuitStats::of(&spec));

    // Three engines, one case.
    let commercial = cone::rectify(&implementation, &spec)?;
    let ds = deltasyn::rectify(&implementation, &spec)?;
    let sy = Syseco::new(EcoOptions::default()).rectify(&implementation, &spec)?;

    println!("\n             inputs outputs  gates   nets     time");
    for (name, r) in [
        ("commercial", &commercial),
        ("deltasyn  ", &ds),
        ("syseco    ", &sy),
    ] {
        assert!(verify_rectification(&r.patched, &spec)?);
        println!(
            "  {name} {:>6} {:>7} {:>6} {:>6} {:>8.2?}  ✓",
            r.stats.inputs, r.stats.outputs, r.stats.gates, r.stats.nets, r.runtime
        );
    }
    println!(
        "\nsyseco/deltasyn gate ratio: {:.2}",
        sy.stats.gates as f64 / ds.stats.gates.max(1) as f64
    );
    Ok(())
}
