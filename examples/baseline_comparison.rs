//! Runs the three engines over a couple of generated benchmark cases and
//! prints a condensed Table-2-style comparison.
//!
//! ```text
//! cargo run --release -p syseco --example baseline_comparison
//! ```

use eco_workload::{build_case, table1_params};
use syseco::baseline::{cone, deltasyn};
use syseco::{verify_rectification, EcoOptions, Syseco};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two of the smaller suite cases keep the example quick.
    let params = table1_params();
    let picks = [4usize, 1]; // cases 5 and 2 (0-based indices)
    let engine = Syseco::new(EcoOptions::default());

    println!("case |        engine | in  out    g    n |     time | ok");
    println!("-----|---------------|-------------------|----------|---");
    for &i in &picks {
        let case = build_case(&params[i]);
        let results = [
            (
                "commercial",
                cone::rectify(&case.implementation, &case.spec)?,
            ),
            (
                "deltasyn",
                deltasyn::rectify(&case.implementation, &case.spec)?,
            ),
            ("syseco", engine.rectify(&case.implementation, &case.spec)?),
        ];
        for (name, r) in &results {
            let ok = verify_rectification(&r.patched, &case.spec)?;
            println!(
                "{:>4} | {:>13} | {:>3} {:>4} {:>4} {:>4} | {:>8.2?} | {}",
                case.id,
                name,
                r.stats.inputs,
                r.stats.outputs,
                r.stats.gates,
                r.stats.nets,
                r.runtime,
                if ok { "✓" } else { "✗" }
            );
            assert!(ok, "{name} produced an incorrect patch");
        }
        println!("     | estimate      | {:>18} |", case.designer_estimate);
        println!("-----|---------------|-------------------|----------|---");
    }
    Ok(())
}
