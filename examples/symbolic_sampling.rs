//! A guided tour of the symbolic sampling machinery (paper §4–§5), using
//! the library's mid-level APIs directly on the paper's Example 1/2 logic.
//!
//! The implementation computes `w_k = (w1_k ∧ v0) ∨ (w2_k ∧ v1)`; the
//! revision introduces `c = a ∧ b` and wants `w_k = (w1_k ∧ c) ∨ (w2_k ∧ ¬c)`.
//! We build the sampling domain by hand, compute `H(t)` and `Ξ(c)`, and
//! print what the engine would see.
//!
//! ```text
//! cargo run --release -p syseco --example symbolic_sampling
//! ```

use eco_bdd::BddManager;
use eco_netlist::{Circuit, GateKind, Pin};
use syseco::correspond::Correspondence;
use syseco::error_domain::collect_samples;
use syseco::points::{candidate_pins, feasible_point_sets, Selection};
use syseco::rewire_nets::{candidates_for_pin, RewireNetContext};
use syseco::sampling::{eval_all_bdd, SamplingDomain};
use syseco::SamplePolicy;

fn implementation() -> Circuit {
    let mut c = Circuit::new("impl");
    let w1 = c.add_input("w1");
    let w2 = c.add_input("w2");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let v0 = c.add_gate(GateKind::Buf, &[a]).unwrap();
    let v1 = c.add_gate(GateKind::Buf, &[b]).unwrap();
    let t1 = c.add_gate(GateKind::And, &[w1, v0]).unwrap();
    let t2 = c.add_gate(GateKind::And, &[w2, v1]).unwrap();
    let w = c.add_gate(GateKind::Or, &[t1, t2]).unwrap();
    c.add_output("w", w);
    c
}

fn specification() -> Circuit {
    let mut s = Circuit::new("spec");
    let w1 = s.add_input("w1");
    let w2 = s.add_input("w2");
    let a = s.add_input("a");
    let b = s.add_input("b");
    let c = s.add_gate(GateKind::And, &[a, b]).unwrap();
    let nc = s.add_gate(GateKind::Not, &[c]).unwrap();
    let t1 = s.add_gate(GateKind::And, &[w1, c]).unwrap();
    let t2 = s.add_gate(GateKind::And, &[w2, nc]).unwrap();
    let w = s.add_gate(GateKind::Or, &[t1, t2]).unwrap();
    s.add_output("w", w);
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let impl_c = implementation();
    let spec = specification();
    let corr = Correspondence::build(&impl_c, &spec)?;
    let pair = corr.outputs[0].clone();

    // §5.1 — collect error-domain samples.
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
    let samples = collect_samples(
        &impl_c,
        &spec,
        &corr,
        &pair,
        16,
        SamplePolicy::ErrorDomain,
        None,
        &mut rng,
        None,
    )?;
    println!("error-domain samples (|E| members): {}", samples.len());
    for s in &samples {
        println!("  x̂ = {s:?}");
    }

    // Build the sampling domain and the functions g(z).
    let mut m = BddManager::new();
    const T_BASE: u32 = 0;
    const Y_BASE: u32 = 32;
    const Z_BASE: u32 = 40;
    let domain = SamplingDomain::new(samples, Z_BASE)?;
    println!(
        "\nsampling domain: N = {} samples → {} z-variables",
        domain.len(),
        domain.num_z_vars()
    );
    let g = domain.input_functions(&mut m, impl_c.num_inputs())?;

    // Spec value f'(g(z)) over the domain.
    let mut g_spec = vec![m.zero(); spec.num_inputs()];
    for (pos, sp) in corr.spec_input_pos.iter().enumerate() {
        if let Some(sp) = sp {
            g_spec[*sp] = g[pos];
        }
    }
    let spec_vals = eval_all_bdd(&spec, &mut m, &g_spec)?;
    let fprime = spec_vals[spec.outputs()[0].net().index()];
    let fprime_bits: Vec<bool> = (0..domain.len())
        .map(|k| m.eval(fprime, &domain.code_assignment(k)))
        .collect();

    // §4.2 — the parameterized selection and H(t).
    let root = impl_c.outputs()[0].net();
    let pins = candidate_pins(&impl_c, root, 0, 16);
    println!("\ncandidate pins (M = {}):", pins.len());
    for (j, p) in pins.iter().enumerate() {
        println!("  q_{j} = {p}");
    }
    for m_points in 1..=2 {
        let selection = Selection::new(T_BASE, m_points, pins.len());
        println!(
            "\nm = {m_points}: {} t-variables ({} per block)",
            selection.num_t_vars(),
            selection.bits_per_block
        );
        let sets = feasible_point_sets(
            &impl_c,
            &mut m,
            domain.samples(),
            &fprime_bits,
            root,
            0,
            &pins,
            &selection,
            Y_BASE,
            8,
            4,
        )?;
        println!("H(t) admits {} point-set(s):", sets.len());
        for set in &sets {
            let names: Vec<String> = set.iter().map(|p| p.to_string()).collect();
            println!("  {{{}}}", names.join(", "));
        }
    }

    // §4.3 — candidate rewiring nets for the v0 gating pin.
    let spec_root = spec.outputs()[0].net();
    let ctx = RewireNetContext::build(&impl_c, &spec, &corr, spec_root, domain.samples())?;
    let gating_pin = pins
        .iter()
        .copied()
        .find(|p| matches!(p, Pin::Gate { .. }))
        .expect("gate pins exist");
    let cands = candidates_for_pin(&impl_c, &ctx, gating_pin, 8, None)?;
    println!("\nrewiring candidates for pin {gating_pin} (utility = |differs on E|/|E|):");
    for c in &cands {
        println!(
            "  net {}{}  utility {:.2}",
            c.net,
            if c.from_spec { " (spec)" } else { "" },
            c.utility
        );
    }
    println!("\nThe engine validates choices of Ξ(c) with SAT and rewires —");
    println!("run `cargo run --example figure1` to see the end-to-end result.");
    Ok(())
}
