//! Quickstart: rectify a hand-built implementation against a revised
//! specification and inspect the patch.
//!
//! ```text
//! cargo run --release -p syseco --example quickstart
//! ```

use eco_netlist::{Circuit, CircuitStats, GateKind};
use syseco::{verify_rectification, EcoOptions, Syseco};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The current implementation: a 2-bit comparator with a bug — the
    // equality output uses OR where it should use AND.
    let mut implementation = Circuit::new("cmp2_impl");
    let a0 = implementation.add_input("a0");
    let a1 = implementation.add_input("a1");
    let b0 = implementation.add_input("b0");
    let b1 = implementation.add_input("b1");
    let eq0 = implementation.add_gate(GateKind::Xnor, &[a0, b0])?;
    let eq1 = implementation.add_gate(GateKind::Xnor, &[a1, b1])?;
    let eq = implementation.add_gate(GateKind::Or, &[eq0, eq1])?; // bug!
    let gt = {
        let nb1 = implementation.add_gate(GateKind::Not, &[b1])?;
        let hi = implementation.add_gate(GateKind::And, &[a1, nb1])?;
        let nb0 = implementation.add_gate(GateKind::Not, &[b0])?;
        let lo = implementation.add_gate(GateKind::And, &[a0, nb0, eq1])?;
        implementation.add_gate(GateKind::Or, &[hi, lo])?
    };
    implementation.add_output("eq", eq);
    implementation.add_output("gt", gt);

    // The revised specification fixes the equality reduction.
    let mut spec = Circuit::new("cmp2_spec");
    let a0 = spec.add_input("a0");
    let a1 = spec.add_input("a1");
    let b0 = spec.add_input("b0");
    let b1 = spec.add_input("b1");
    let eq0 = spec.add_gate(GateKind::Xnor, &[a0, b0])?;
    let eq1 = spec.add_gate(GateKind::Xnor, &[a1, b1])?;
    let eq = spec.add_gate(GateKind::And, &[eq0, eq1])?; // fixed
    let gt = {
        let nb1 = spec.add_gate(GateKind::Not, &[b1])?;
        let hi = spec.add_gate(GateKind::And, &[a1, nb1])?;
        let nb0 = spec.add_gate(GateKind::Not, &[b0])?;
        let lo = spec.add_gate(GateKind::And, &[a0, nb0, eq1])?;
        spec.add_gate(GateKind::Or, &[hi, lo])?
    };
    spec.add_output("eq", eq);
    spec.add_output("gt", gt);

    println!("implementation: {}", CircuitStats::of(&implementation));
    println!("specification:  {}", CircuitStats::of(&spec));

    // Run the symbolic-sampling ECO engine.
    let engine = Syseco::new(EcoOptions::default());
    let result = engine.rectify(&implementation, &spec)?;

    println!("\nrectified in {:?}", result.runtime);
    println!(
        "failing outputs: {} of {}",
        result.rectify.outputs_failing, result.rectify.outputs_total
    );
    println!("patch: {:?}", result.stats);
    for op in result.patch.rewires() {
        println!(
            "  rewire {}: {} -> {}{}",
            op.pin,
            op.old_net,
            op.new_net,
            if op.from_spec {
                " (cloned from spec)"
            } else {
                " (existing net)"
            }
        );
    }

    // Independent verification: the patched design is equivalent to the
    // revised specification on every output.
    assert!(verify_rectification(&result.patched, &spec)?);
    println!("\nverification: patched implementation ≡ revised specification ✓");
    Ok(())
}
