//! The paper's Figure 1 / Examples 1–2 scenario.
//!
//! The implementation computes word outputs
//! `w_out = GATE(w_in1, v0) ∨ GATE(w_in2, v1)` where `v0` and `v1` are
//! multi-sink single-bit nets. The revision introduces a new signal
//! `c = a ∧ b` and redefines the gating to `c` and `¬c` — while another
//! signal `d` that also depends on `b` must be preserved. The economical
//! rectification rewires the gating sinks of `v0`/`v1` (all but the sinks
//! that must survive) instead of re-synthesizing the word logic.
//!
//! ```text
//! cargo run --release -p syseco --example figure1
//! ```

use eco_synth::lower::synthesize;
use eco_synth::rtl::{RtlModule, WordExpr as E};
use syseco::{verify_rectification, EcoOptions, Syseco};

const WIDTH: u32 = 4;

/// Builds the Figure-1 design; `revised` selects the new specification.
fn module(revised: bool) -> RtlModule {
    let mut m = RtlModule::new(if revised { "fig1_spec" } else { "fig1_impl" });
    m.add_input("w_in1", WIDTH);
    m.add_input("w_in2", WIDTH);
    m.add_input("a", 1);
    m.add_input("b", 1);

    // Original gating signals v(0) = a, v(1) = b (multi-sink).
    m.add_signal("v0", E::input("a"));
    m.add_signal("v1", E::input("b"));
    // A signal d depending on b that the revision must NOT affect.
    m.add_signal("d", E::gate(E::input("w_in1"), E::input("b")));

    if revised {
        // The revision: c = a AND b gates word 1; ¬c gates word 2.
        m.add_signal("c", E::and(E::input("a"), E::input("b")));
        m.add_signal(
            "vout",
            E::or(
                E::gate(E::input("w_in1"), E::signal("c")),
                E::gate(E::input("w_in2"), E::not(E::signal("c"))),
            ),
        );
    } else {
        m.add_signal(
            "vout",
            E::or(
                E::gate(E::input("w_in1"), E::signal("v0")),
                E::gate(E::input("w_in2"), E::signal("v1")),
            ),
        );
    }
    m.add_output("vout", E::signal("vout"));
    m.add_output("d", E::signal("d"));
    m
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let implementation = synthesize(&module(false))?;
    let spec = synthesize(&module(true))?;

    println!("Figure 1 scenario: re-gating multi-sink words with c and ¬c");
    println!(
        "implementation: {}",
        eco_netlist::CircuitStats::of(&implementation)
    );

    let engine = Syseco::new(EcoOptions::default());
    let result = engine.rectify(&implementation, &spec)?;

    println!("\npatch: {:?} in {:?}", result.stats, result.runtime);
    println!(
        "rewired pins: {} (fallbacks: {}, refinements: {})",
        result.patch.rewires().len(),
        result.rectify.fallbacks,
        result.rectify.refinements
    );
    for op in result.patch.rewires() {
        println!(
            "  {} : {} -> {}{}",
            op.pin,
            op.old_net,
            op.new_net,
            if op.from_spec {
                "  [cloned c-logic]"
            } else {
                ""
            }
        );
    }

    assert!(verify_rectification(&result.patched, &spec)?);
    println!("\nverification ✓ — `d` was preserved, `vout` was re-gated");
    Ok(())
}
