//! The documented exit-code contract of every shipped binary (README
//! "Exit codes"): scripts and CI pipelines branch on these, so each code
//! is pinned by an integration test.
//!
//! * `syseco`: 0 success, 1 verification failure, 2 usage, 3 degraded
//!   but honest.
//! * `syseco-serve`: 0 clean drain, (1 fatal,) 2 usage.
//! * `syseco-load`: 0 all jobs accounted, (1 violation,) 2 usage.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};

const IMPL: &str = ".model impl\n.inputs a b\n.outputs y\n.gate and w a b\n.assign y w\n.end\n";
const SPEC: &str = ".model spec\n.inputs a b\n.outputs y\n.gate or w a b\n.assign y w\n.end\n";

/// Writes the tiny AND/OR pair into a fresh temp dir.
fn netlist_pair(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("syseco-exit-codes-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let impl_path = dir.join("impl.blif");
    let spec_path = dir.join("spec.blif");
    std::fs::write(&impl_path, IMPL).unwrap();
    std::fs::write(&spec_path, SPEC).unwrap();
    (dir, impl_path, spec_path)
}

fn code(cmd: &mut Command) -> i32 {
    cmd.stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn binary")
        .code()
        .expect("terminated by signal")
}

#[test]
fn syseco_exit_code_contract() {
    let syseco = env!("CARGO_BIN_EXE_syseco");
    let (dir, impl_path, spec_path) = netlist_pair("cli");

    // 0: successful, fully verified rectification.
    assert_eq!(
        code(
            Command::new(syseco)
                .args(["rectify"])
                .arg(&impl_path)
                .arg(&spec_path)
                .args(["--seed", "3"])
        ),
        0
    );
    // 0: check over an equivalent pair.
    assert_eq!(
        code(
            Command::new(syseco)
                .arg("check")
                .arg(&impl_path)
                .arg(&impl_path)
        ),
        0
    );
    // 1: check reports differing outputs.
    assert_eq!(
        code(
            Command::new(syseco)
                .arg("check")
                .arg(&impl_path)
                .arg(&spec_path)
        ),
        1
    );
    // 2: usage errors — no arguments, and an unknown subcommand.
    assert_eq!(code(&mut Command::new(syseco)), 2);
    assert_eq!(code(Command::new(syseco).arg("bogus")), 2);
    // 3: the run finishes degraded-but-honest under an expired budget.
    assert_eq!(
        code(
            Command::new(syseco)
                .arg("rectify")
                .arg(&impl_path)
                .arg(&spec_path)
                .args(["--seed", "3", "--timeout", "0.0001"])
        ),
        3
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_and_load_usage_errors_are_code_2() {
    let serve = env!("CARGO_BIN_EXE_syseco-serve");
    let load = env!("CARGO_BIN_EXE_syseco-load");

    assert_eq!(code(Command::new(serve).arg("--bogus")), 2);
    assert_eq!(code(Command::new(serve).args(["--workers"])), 2);
    assert_eq!(code(&mut Command::new(load)), 2, "a mode flag is required");
    assert_eq!(
        code(Command::new(load).args(["--addr", "127.0.0.1:1", "--bench"])),
        2,
        "--addr and --bench are mutually exclusive"
    );
    // --help is not an error.
    assert_eq!(code(Command::new(serve).arg("--help")), 0);
    assert_eq!(code(Command::new(load).arg("--help")), 0);
}

#[test]
fn serve_drains_to_code_0_and_load_accounts_to_code_0() {
    let serve = env!("CARGO_BIN_EXE_syseco-serve");
    let load = env!("CARGO_BIN_EXE_syseco-load");
    let dir = std::env::temp_dir().join(format!("syseco-exit-codes-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut daemon = Command::new(serve)
        .args(["--addr", "127.0.0.1:0", "--workers", "1"])
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .arg("--checkpoint-dir")
        .arg(dir.join("ckpt"))
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn syseco-serve");

    // The daemon prints `listening <addr>` once bound.
    let stdout = daemon.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_string();

    // 0 from syseco-load: every submitted job resolves and is accounted.
    assert_eq!(
        code(Command::new(load).args(["--addr", &addr, "--jobs", "3", "--concurrency", "2"])),
        0
    );

    // 0 from syseco-serve: graceful drain via the frame-level shutdown.
    let mut controller = syseco::serve::Client::connect(&addr).expect("connect controller");
    controller.shutdown_daemon().expect("send shutdown frame");
    let status = daemon.wait().expect("daemon exit status");
    assert_eq!(status.code(), Some(0), "clean drain must exit 0");

    let _ = std::fs::remove_dir_all(&dir);
}
