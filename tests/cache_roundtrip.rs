//! Persistent-cache roundtrip properties: a warm run must reproduce the
//! cold run byte-for-byte (records are hints, re-verified before use, so
//! reuse can never change the answer), `CacheMode::Off` must be a true
//! no-op, and corrupted cache files must degrade to misses — correct
//! results, a bumped corruption counter, and no errors.

mod common;

use common::{case_params, tmp_dir};
use eco_netlist::write_blif;
use eco_workload::{build_case, CaseParams, RevisionKind};
use proptest::prelude::*;
use syseco::{verify_rectification, CacheMode, EcoOptions, Syseco};

/// Small multi-output cases: enough failing cones for per-output records
/// to matter, cheap enough to rectify three times per proptest case.
fn params() -> impl Strategy<Value = CaseParams> {
    case_params(9400, "prop-cache")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn warm_runs_reproduce_cold_runs(params in params()) {
        let case = build_case(&params);
        let dir = tmp_dir(&format!("prop-{:016x}", params.seed));
        let run = |jobs: usize, mode: CacheMode| {
            let options = EcoOptions::builder()
                .seed(params.seed ^ 0x51CA)
                .jobs(jobs)
                .cache_dir(&dir)
                .cache_mode(mode)
                .build();
            Syseco::new(options)
                .rectify(&case.implementation, &case.spec)
                .expect("rectification succeeds")
        };

        let cold = run(1, CacheMode::ReadWrite);
        prop_assert_eq!(cold.rectify.cache_hits, 0, "first run cannot hit");
        prop_assert!(cold.rectify.cache_misses > 0, "first run must miss");

        for jobs in [1usize, 4] {
            let warm = run(jobs, CacheMode::ReadWrite);
            prop_assert!(
                warm.rectify.cache_hits > 0,
                "second run (jobs={}) should reuse the stored run record",
                jobs
            );
            prop_assert_eq!(
                write_blif(&warm.patched),
                write_blif(&cold.patched),
                "warm patched netlist must be byte-identical (jobs={})",
                jobs
            );
            prop_assert_eq!(
                format!("{:?}", warm.patch.rewires()),
                format!("{:?}", cold.patch.rewires())
            );
        }
        prop_assert!(verify_rectification(&cold.patched, &case.spec).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_off_is_a_no_op(params in params()) {
        let case = build_case(&params);
        let dir = tmp_dir(&format!("off-{:016x}", params.seed));
        let run = |mode: Option<CacheMode>| {
            let mut builder = EcoOptions::builder().seed(params.seed ^ 0x0FF).jobs(1);
            if let Some(mode) = mode {
                builder = builder.cache_dir(&dir).cache_mode(mode);
            }
            Syseco::new(builder.build())
                .rectify(&case.implementation, &case.spec)
                .expect("rectification succeeds")
        };

        let plain = run(None);
        let off = run(Some(CacheMode::Off));
        prop_assert!(!dir.exists(), "CacheMode::Off must not create files");
        prop_assert_eq!(off.rectify.cache_hits, 0);
        prop_assert_eq!(off.rectify.cache_misses, 0);
        prop_assert_eq!(off.rectify.cache_verify_rejects, 0);
        prop_assert_eq!(off.rectify.cache_corrupt_segments, 0);
        prop_assert_eq!(write_blif(&off.patched), write_blif(&plain.patched));

        // Read-only against a directory that does not exist: still a clean
        // all-miss run that writes nothing.
        let ro = run(Some(CacheMode::ReadOnly));
        prop_assert!(!dir.exists(), "read-only mode must not create files");
        prop_assert_eq!(ro.rectify.cache_hits, 0);
        prop_assert_eq!(write_blif(&ro.patched), write_blif(&plain.patched));
    }
}

#[test]
fn corrupted_cache_degrades_to_misses_not_errors() {
    let params = CaseParams {
        id: 9401,
        name: "cache-corrupt",
        seed: 0xC0DE,
        input_words: 3,
        width: 3,
        logic_signals: 10,
        output_words: 3,
        revisions: vec![
            (0, RevisionKind::PolarityFlip),
            (1, RevisionKind::ConditionFlip),
        ],
        heavy_optimization: false,
        aggressive_optimization: false,
    };
    let case = build_case(&params);
    let dir = tmp_dir("corrupt");
    let run = || {
        let options = EcoOptions::builder()
            .seed(0xC0DE)
            .jobs(1)
            .cache_dir(&dir)
            .build();
        Syseco::new(options)
            .rectify(&case.implementation, &case.spec)
            .expect("rectification succeeds")
    };

    let cold = run();

    // Flip every byte of every committed segment file.
    let mut corrupted = 0usize;
    for entry in std::fs::read_dir(&dir).expect("cache dir exists after a rw run") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "ecc") {
            let mut bytes = std::fs::read(&path).expect("read segment");
            for b in &mut bytes {
                *b ^= 0x5A;
            }
            std::fs::write(&path, bytes).expect("write segment");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "the cold run must have committed segments");

    let warm = run();
    assert!(
        warm.rectify.cache_corrupt_segments > 0,
        "corrupted segments must be counted: {:?}",
        warm.rectify
    );
    assert_eq!(
        warm.rectify.cache_hits, 0,
        "corrupted records must not be served"
    );
    assert!(warm.rectify.cache_misses > 0);
    assert_eq!(
        write_blif(&warm.patched),
        write_blif(&cold.patched),
        "corruption must not change the result"
    );
    assert!(verify_rectification(&warm.patched, &case.spec).unwrap());

    // The corrupted-then-rerun store recovers: a third run hits again.
    let recovered = run();
    assert!(recovered.rectify.cache_hits > 0);
    assert_eq!(write_blif(&recovered.patched), write_blif(&cold.patched));
    let _ = std::fs::remove_dir_all(&dir);
}
