//! Cross-engine integration: all three engines on the same cases, checking
//! correctness everywhere and the paper's qualitative ordering — syseco
//! patches no larger than the cone proxy, and smaller than DeltaSyn on
//! structurally dissimilar implementations.

use eco_workload::{build_case, table1_params};
use syseco::baseline::{cone, deltasyn};
use syseco::{verify_rectification, EcoOptions, Syseco};

#[test]
fn all_engines_correct_on_case5() {
    let case = build_case(&table1_params()[4]);
    let commercial = cone::rectify(&case.implementation, &case.spec).unwrap();
    let ds = deltasyn::rectify(&case.implementation, &case.spec).unwrap();
    let sy = Syseco::new(EcoOptions::default())
        .rectify(&case.implementation, &case.spec)
        .unwrap();
    for (name, r) in [("cone", &commercial), ("deltasyn", &ds), ("syseco", &sy)] {
        assert!(
            verify_rectification(&r.patched, &case.spec).unwrap(),
            "{name} must produce a correct patch"
        );
    }
    assert!(
        sy.stats.gates <= commercial.stats.gates,
        "syseco ({}) must not exceed the cone proxy ({})",
        sy.stats.gates,
        commercial.stats.gates
    );
    assert!(
        sy.stats.gates <= ds.stats.gates,
        "syseco ({}) must not exceed DeltaSyn ({}) on optimized designs",
        sy.stats.gates,
        ds.stats.gates
    );
}

#[test]
fn deltasyn_beats_cone_on_unoptimized_designs() {
    // When the implementation is only lightly optimized, structural
    // matching works and DeltaSyn's patch is smaller than a full cone copy.
    let mut params = table1_params()[4].clone();
    params.heavy_optimization = false;
    let case = build_case(&params);
    let commercial = cone::rectify(&case.implementation, &case.spec).unwrap();
    let ds = deltasyn::rectify(&case.implementation, &case.spec).unwrap();
    assert!(verify_rectification(&ds.patched, &case.spec).unwrap());
    assert!(
        ds.stats.gates <= commercial.stats.gates,
        "deltasyn ({}) should reuse matched structure vs cone ({})",
        ds.stats.gates,
        commercial.stats.gates
    );
}

#[test]
fn optimization_hurts_deltasyn_more_than_syseco() {
    // The central claim: structural dissimilarity inflates structural
    // engines but not the functional one.
    let mut light_params = table1_params()[4].clone();
    light_params.heavy_optimization = false;
    let light = build_case(&light_params);
    let heavy = build_case(&table1_params()[4]);

    let ds_light = deltasyn::rectify(&light.implementation, &light.spec).unwrap();
    let ds_heavy = deltasyn::rectify(&heavy.implementation, &heavy.spec).unwrap();
    let sy_heavy = Syseco::new(EcoOptions::default())
        .rectify(&heavy.implementation, &heavy.spec)
        .unwrap();

    assert!(
        ds_heavy.stats.gates >= ds_light.stats.gates,
        "heavy optimization should not shrink the DeltaSyn patch \
         (light {}, heavy {})",
        ds_light.stats.gates,
        ds_heavy.stats.gates
    );
    assert!(
        sy_heavy.stats.gates <= ds_heavy.stats.gates,
        "on the optimized design syseco ({}) must beat DeltaSyn ({})",
        sy_heavy.stats.gates,
        ds_heavy.stats.gates
    );
}
