//! In-tree differential-fuzzing conformance run (DESIGN.md §12): five
//! hundred generated scenarios through the full cross-oracle matrix —
//! simulation, SAT CEC, BDD equivalence, rectification at one and four
//! workers, and periodic cache cold/warm replay — with zero disagreements
//! expected, plus the determinism guarantee behind `syseco-fuzz run`.

mod common;

use common::tmp_dir;
use eco_netlist::write_blif;
use syseco::fuzz::{generate, iteration_seed, FuzzConfig, FuzzRunner, ScenarioConfig};

#[test]
fn five_hundred_iterations_with_zero_disagreements() {
    let config = FuzzConfig {
        cache_every: 25,
        scratch_dir: Some(tmp_dir("fuzz-conformance")),
        ..FuzzConfig::default()
    };
    let runner = FuzzRunner::new(config);
    let report = runner
        .run(0xDAC_2019, 500, |_, _| {})
        .expect("fuzzing infrastructure stays healthy");
    assert_eq!(report.iterations, 500);
    assert_eq!(
        report.cache_checked, 20,
        "every 25th iteration also replays through the cache"
    );
    assert!(
        report.failures.is_empty(),
        "cross-oracle disagreements: {}",
        report
            .failures
            .iter()
            .flat_map(|f| f.disagreements.iter())
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
fn scenario_stream_is_deterministic_for_a_fixed_seed() {
    // The substrate of `syseco-fuzz run` determinism: the same run seed
    // derives the same scenario seeds and byte-identical circuit pairs.
    let config = ScenarioConfig::default();
    for i in [0u64, 1, 7, 63] {
        let seed = iteration_seed(0xF0CC, i);
        let a = generate(seed, &config).expect("generates");
        let b = generate(seed, &config).expect("generates");
        assert_eq!(write_blif(&a.implementation), write_blif(&b.implementation));
        assert_eq!(write_blif(&a.spec), write_blif(&b.spec));
        assert_eq!(a.delta.len(), b.delta.len());
    }
}

#[test]
fn fuzz_reports_are_reproducible() {
    let runner = FuzzRunner::new(FuzzConfig {
        cache_every: 0,
        ..FuzzConfig::default()
    });
    let mut ticks = Vec::new();
    let a = runner
        .run(42, 25, |done, fails| ticks.push((done, fails)))
        .expect("first run");
    let b = runner.run(42, 25, |_, _| {}).expect("second run");
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.failures.len(), b.failures.len());
    assert_eq!(ticks.len(), 25, "progress fires once per iteration");
}
