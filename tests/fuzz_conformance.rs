//! In-tree differential-fuzzing conformance run (DESIGN.md §12): five
//! hundred generated scenarios through the full cross-oracle matrix —
//! simulation, SAT CEC, BDD equivalence, rectification at one and four
//! workers, and periodic cache cold/warm replay — with zero disagreements
//! expected, plus the determinism guarantee behind `syseco-fuzz run`.

mod common;

use common::tmp_dir;
use eco_netlist::write_blif;
use syseco::fuzz::{generate, iteration_seed, FuzzConfig, FuzzRunner, ScenarioConfig};

#[test]
fn five_hundred_iterations_with_zero_disagreements() {
    let config = FuzzConfig {
        cache_every: 25,
        scratch_dir: Some(tmp_dir("fuzz-conformance")),
        ..FuzzConfig::default()
    };
    let runner = FuzzRunner::new(config);
    let report = runner
        .run(0xDAC_2019, 500, |_, _| {})
        .expect("fuzzing infrastructure stays healthy");
    assert_eq!(report.iterations, 500);
    assert_eq!(
        report.cache_checked, 20,
        "every 25th iteration also replays through the cache"
    );
    assert!(
        report.failures.is_empty(),
        "cross-oracle disagreements: {}",
        report
            .failures
            .iter()
            .flat_map(|f| f.disagreements.iter())
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
fn scenario_stream_is_deterministic_for_a_fixed_seed() {
    // The substrate of `syseco-fuzz run` determinism: the same run seed
    // derives the same scenario seeds and byte-identical circuit pairs.
    let config = ScenarioConfig::default();
    for i in [0u64, 1, 7, 63] {
        let seed = iteration_seed(0xF0CC, i);
        let a = generate(seed, &config).expect("generates");
        let b = generate(seed, &config).expect("generates");
        assert_eq!(write_blif(&a.implementation), write_blif(&b.implementation));
        assert_eq!(write_blif(&a.spec), write_blif(&b.spec));
        assert_eq!(a.delta.len(), b.delta.len());
    }
}

#[test]
fn fuzz_reports_are_reproducible() {
    let runner = FuzzRunner::new(FuzzConfig {
        cache_every: 0,
        ..FuzzConfig::default()
    });
    let mut ticks = Vec::new();
    let a = runner
        .run(42, 25, |done, fails| ticks.push((done, fails)))
        .expect("first run");
    let b = runner.run(42, 25, |_, _| {}).expect("second run");
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.failures.len(), b.failures.len());
    assert_eq!(ticks.len(), 25, "progress fires once per iteration");
}

/// Prefilter soundness over two hundred fuzz scenarios: a candidate the
/// bit-parallel simulation screen rejects must never be SAT-validated as
/// `Valid` — the screen may only refuse candidates the oracle would also
/// refuse (DESIGN.md §16's "sound, never complete" contract).
#[test]
fn prefilter_screen_is_sound_across_two_hundred_scenarios() {
    use eco_netlist::NetId;
    use std::collections::{HashMap, HashSet};
    use syseco::correspond::Correspondence;
    use syseco::points::candidate_pins;
    use syseco::prefilter::{PrefilterBank, Screen};
    use syseco::rewire_nets::RewireCandidate;
    use syseco::validate::{validate_rewires_with_stats, CandidateRewire, Validation};

    // Tiny deterministic splitmix64 stream; no RNG dependency needed.
    struct Sm(u64);
    impl Sm {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n.max(1) as u64) as usize
        }
    }

    let config = ScenarioConfig::default();
    let mut screened_total = 0u64;
    let mut passed_total = 0u64;
    for i in 0..200u64 {
        let seed = iteration_seed(0x5C4EE4, i);
        let sc = generate(seed, &config).expect("scenario generates");
        let im = &sc.implementation;
        let sp = &sc.spec;
        let corr = match Correspondence::build(im, sp) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let mut rng = Sm(seed ^ 0xA5A5);
        // 48 samples: not a multiple of 64, so the tail-bit mask of the
        // final simulation block is exercised on every scenario.
        let samples: Vec<Vec<bool>> = (0..48)
            .map(|_| (0..im.num_inputs()).map(|_| rng.next() & 1 == 1).collect())
            .collect();
        let pair = &corr.outputs[rng.below(corr.outputs.len())];
        let root = im.outputs()[pair.impl_index as usize].net();
        let pf = PrefilterBank::build(sp, &corr, pair, &samples).expect("bank builds");
        let pins = candidate_pins(im, root, pair.impl_index, 16);
        if pins.is_empty() {
            continue;
        }
        // Treat every output as failing: the damage rule then prunes
        // nothing, making `Valid` as permissive as possible — the hardest
        // setting for a soundness claim about the screen.
        let failing: HashSet<u32> = (0..im.outputs().len() as u32).collect();
        let no_clones: HashMap<NetId, NetId> = HashMap::new();
        for _ in 0..6 {
            let pin = pins[rng.below(pins.len())];
            let net = NetId::from_index(rng.below(im.num_nodes()));
            let rewires = vec![CandidateRewire {
                pin,
                candidate: RewireCandidate {
                    net,
                    from_spec: false,
                    utility: 0.0,
                    arrival: 0.0,
                },
            }];
            let verdict = match pf.screen(im, sp, &rewires, pair) {
                Ok(v) => v,
                // A random net index may reference a dead node the fuzz
                // mutator left behind; validation rejects those the same
                // way, so they carry no soundness signal.
                Err(_) => continue,
            };
            match verdict {
                Screen::Screened => screened_total += 1,
                Screen::Pass => {
                    passed_total += 1;
                    continue;
                }
            }
            let (validation, _) = validate_rewires_with_stats(
                im, sp, &corr, &rewires, pair, &failing, &samples, &no_clones, 100_000, None,
            )
            .expect("validation runs");
            assert!(
                !matches!(validation, Validation::Valid { .. }),
                "screened candidate validated as Valid (scenario {i}, pin {pin:?}, net {net:?})"
            );
        }
    }
    assert!(screened_total > 0, "the sweep never screened a candidate");
    assert!(passed_total > 0, "the sweep never passed a candidate");
}

/// The engine's prefilter accounting must reconcile on real runs: every
/// screened or passed candidate was first counted as a choice, and only
/// passed candidates consume SAT-validation slots.
#[test]
fn prefilter_counters_reconcile_with_search_accounting() {
    use syseco::{EcoOptions, Syseco};

    let config = ScenarioConfig::default();
    let mut screened_anywhere = 0u64;
    for i in 0..25u64 {
        let seed = iteration_seed(0xC0FFEE, i);
        let sc = generate(seed, &config).expect("scenario generates");
        let result = Syseco::new(EcoOptions::with_seed(seed ^ 1))
            .rectify(&sc.implementation, &sc.spec)
            .expect("rectification succeeds");
        let st = &result.rectify;
        assert!(
            st.prefilter_screened + st.prefilter_passed <= st.choices_tried,
            "scenario {i}: screened {} + passed {} exceeds choices {}",
            st.prefilter_screened,
            st.prefilter_passed,
            st.choices_tried
        );
        assert!(
            st.prefilter_passed <= st.validations,
            "scenario {i}: passed {} exceeds validations {}",
            st.prefilter_passed,
            st.validations
        );
        screened_anywhere += st.prefilter_screened as u64;
    }
    assert!(
        screened_anywhere > 0,
        "twenty-five fuzz rectifications never screened a single candidate"
    );
}
