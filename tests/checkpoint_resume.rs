//! Crash-safe checkpoint/resume properties (DESIGN.md §13): a rerun over a
//! populated checkpoint directory resumes every completed output, skips no
//! verification, and reproduces the uninterrupted patch byte-for-byte at
//! any worker count; corrupted checkpoint records degrade to fresh
//! searches, never wrong answers. With `--features fault-injection`, a run
//! killed at every enumerated fault point must resume to the same bytes.

mod common;

use common::{case_params, tmp_dir};
use eco_netlist::write_blif;
use eco_workload::{build_case, CaseParams, RevisionKind};
use proptest::prelude::*;
use syseco::{verify_rectification, EcoOptions, EcoResult, Syseco};

fn multi_output_params() -> CaseParams {
    CaseParams {
        id: 9600,
        name: "ckpt-resume",
        seed: 0xC4EC,
        input_words: 3,
        width: 3,
        logic_signals: 8,
        output_words: 3,
        revisions: vec![
            (0, RevisionKind::PolarityFlip),
            (1, RevisionKind::ConditionFlip),
            (2, RevisionKind::SingleBitFlip),
        ],
        heavy_optimization: false,
        aggressive_optimization: false,
    }
}

fn run_checkpointed(
    case: &eco_workload::EcoCase,
    seed: u64,
    jobs: usize,
    dir: Option<&std::path::Path>,
) -> EcoResult {
    let mut builder = EcoOptions::builder().seed(seed).jobs(jobs);
    if let Some(dir) = dir {
        builder = builder.checkpoint_dir(dir.to_path_buf());
    }
    Syseco::new(builder.build())
        .rectify(&case.implementation, &case.spec)
        .expect("rectification succeeds")
}

#[test]
fn rerun_resumes_completed_outputs_byte_identically() {
    let case = build_case(&multi_output_params());
    let dir = tmp_dir("ckpt-rerun");
    let reference = run_checkpointed(&case, 0xC4EC, 1, None);

    let cold = run_checkpointed(&case, 0xC4EC, 1, Some(&dir));
    assert_eq!(cold.rectify.checkpoint_hits, 0, "first run cannot resume");
    assert!(
        cold.rectify.checkpoint_writes > 0,
        "first run must record completed outputs: {:?}",
        cold.rectify
    );
    assert_eq!(
        write_blif(&cold.patched),
        write_blif(&reference.patched),
        "checkpointing must not change the answer"
    );

    // Reruns — the crash-recovery path in the limit of a crash after the
    // last output — resume everything and write nothing, at any job count.
    for jobs in [1usize, 4] {
        let resumed = run_checkpointed(&case, 0xC4EC, jobs, Some(&dir));
        assert_eq!(
            resumed.rectify.checkpoint_hits, cold.rectify.checkpoint_writes,
            "every recorded output resumes (jobs={jobs}): {:?}",
            resumed.rectify
        );
        assert_eq!(
            resumed.rectify.checkpoint_writes, 0,
            "a fully resumed run re-records nothing (jobs={jobs})"
        );
        assert_eq!(
            write_blif(&resumed.patched),
            write_blif(&reference.patched),
            "resumed patch must be byte-identical (jobs={jobs})"
        );
        assert!(verify_rectification(&resumed.patched, &case.spec).unwrap());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_checkpoint_degrades_to_fresh_searches() {
    let case = build_case(&multi_output_params());
    let dir = tmp_dir("ckpt-corrupt");
    let cold = run_checkpointed(&case, 0xC4EC, 1, Some(&dir));
    assert!(cold.rectify.checkpoint_writes > 0);

    // Flip every byte of every committed checkpoint segment.
    let mut corrupted = 0usize;
    for entry in std::fs::read_dir(&dir).expect("checkpoint dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "ecc") {
            let mut bytes = std::fs::read(&path).expect("read segment");
            for b in &mut bytes {
                *b ^= 0x5A;
            }
            std::fs::write(&path, bytes).expect("write segment");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "the cold run must have committed segments");

    let rerun = run_checkpointed(&case, 0xC4EC, 1, Some(&dir));
    assert_eq!(
        rerun.rectify.checkpoint_hits, 0,
        "corrupted records must not be served"
    );
    assert!(
        rerun.rectify.cache_corrupt_segments > 0,
        "corruption must be counted: {:?}",
        rerun.rectify
    );
    assert_eq!(
        write_blif(&rerun.patched),
        write_blif(&cold.patched),
        "corruption must not change the result"
    );
    assert!(verify_rectification(&rerun.patched, &case.spec).unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_key_on_the_revision_pair() {
    // A different spec revision against the same checkpoint directory must
    // not resume the other revision's records.
    let case_a = build_case(&multi_output_params());
    let case_b = build_case(&CaseParams {
        revisions: vec![(0, RevisionKind::ConditionFlip)],
        ..multi_output_params()
    });
    let dir = tmp_dir("ckpt-keys");
    let a = run_checkpointed(&case_a, 0xC4EC, 1, Some(&dir));
    assert!(a.rectify.checkpoint_writes > 0);
    let b = run_checkpointed(&case_b, 0xC4EC, 1, Some(&dir));
    assert_eq!(
        b.rectify.checkpoint_hits, 0,
        "records of a different revision pair must not resume"
    );
    assert!(verify_rectification(&b.patched, &case_b.spec).unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill the run at **every** enumerated span fault point in turn, then
/// resume from the same checkpoint directory without faults: the final
/// patched netlist must be byte-identical to an uninterrupted run's, at
/// one and four workers.
#[cfg(feature = "fault-injection")]
#[test]
fn killed_at_every_fault_point_resumes_byte_identically() {
    use syseco::{Budget, EcoError, FaultPlan, Session, SpanPoint};

    let case = build_case(&multi_output_params());
    for jobs in [1usize, 4] {
        let options = EcoOptions::builder().seed(0xC4EC).jobs(jobs).build();
        let reference = Syseco::new(options)
            .rectify(&case.implementation, &case.spec)
            .expect("uninterrupted run succeeds");
        let reference = write_blif(&reference.patched);

        for point in SpanPoint::ALL {
            let dir = tmp_dir(&format!("ckpt-kill-{point}-j{jobs}"));
            let options = EcoOptions::builder()
                .seed(0xC4EC)
                .jobs(jobs)
                .checkpoint_dir(&dir)
                .build();
            let plan = FaultPlan::parse(&format!("abort:{point}@1")).unwrap();
            let session = Session::new(options.clone());
            match session.run_with_budget(
                &case.implementation,
                &case.spec,
                &Budget::unlimited().with_fault_plan(plan),
            ) {
                // The point was reached: the run "crashed" there. Durable
                // state must carry a faultless rerun to the same bytes.
                Err(EcoError::InjectedAbort) => {
                    let resumed = session
                        .run_with_budget(&case.implementation, &case.spec, &Budget::unlimited())
                        .unwrap_or_else(|e| {
                            panic!("resume after abort:{point} (jobs={jobs}) failed: {e}")
                        });
                    assert_eq!(
                        write_blif(&resumed.patched),
                        reference,
                        "resume after abort:{point} diverged (jobs={jobs})"
                    );
                    assert!(verify_rectification(&resumed.patched, &case.spec).unwrap());
                }
                // The point was never reached on this workload (e.g. a
                // span that only opens on larger runs): same bytes anyway.
                Ok(result) => {
                    assert_eq!(
                        write_blif(&result.patched),
                        reference,
                        "unfired abort:{point} changed the result (jobs={jobs})"
                    );
                }
                Err(e) => panic!("abort:{point} (jobs={jobs}) errored unexpectedly: {e}"),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The BDD engine's own fault points: abort injected through the manager's
/// event hook at the first garbage-collection and the first reorder pass.
/// Arming either point forces the manager's thresholds low so the faulted
/// machinery genuinely runs; the veto surfaces as the same simulated crash
/// as a span abort, and a faultless rerun over the surviving checkpoints
/// must reproduce the uninterrupted bytes.
#[cfg(feature = "fault-injection")]
#[test]
fn killed_inside_bdd_gc_and_reorder_resumes_byte_identically() {
    use syseco::{Budget, EcoError, FaultPlan, Session};

    let case = build_case(&multi_output_params());
    for jobs in [1usize, 4] {
        let options = EcoOptions::builder().seed(0xC4EC).jobs(jobs).build();
        let reference = Syseco::new(options)
            .rectify(&case.implementation, &case.spec)
            .expect("uninterrupted run succeeds");
        let reference = write_blif(&reference.patched);

        for point in ["bdd-gc", "bdd-reorder"] {
            let dir = tmp_dir(&format!("ckpt-kill-{point}-j{jobs}"));
            let options = EcoOptions::builder()
                .seed(0xC4EC)
                .jobs(jobs)
                .checkpoint_dir(&dir)
                .build();
            let plan = FaultPlan::parse(&format!("{point}@1")).unwrap();
            let session = Session::new(options);
            match session.run_with_budget(
                &case.implementation,
                &case.spec,
                &Budget::unlimited().with_fault_plan(plan),
            ) {
                Err(EcoError::InjectedAbort) => {
                    let resumed = session
                        .run_with_budget(&case.implementation, &case.spec, &Budget::unlimited())
                        .unwrap_or_else(|e| {
                            panic!("resume after {point}@1 (jobs={jobs}) failed: {e}")
                        });
                    assert_eq!(
                        write_blif(&resumed.patched),
                        reference,
                        "resume after {point}@1 diverged (jobs={jobs})"
                    );
                    assert!(verify_rectification(&resumed.patched, &case.spec).unwrap());
                }
                other => panic!(
                    "armed {point}@1 must reach its forced-threshold event and abort \
                     (jobs={jobs}); got {other:?}"
                ),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Checkpoint/resume determinism over generated cases: populate, then
    /// rerun at one and four workers — always the cold run's bytes.
    #[test]
    fn generated_cases_resume_deterministically(params in case_params(9601, "prop-ckpt")) {
        let case = build_case(&params);
        let dir = tmp_dir(&format!("ckpt-prop-{:016x}", params.seed));
        let cold = run_checkpointed(&case, params.seed ^ 0xCC, 1, Some(&dir));
        for jobs in [1usize, 4] {
            let resumed = run_checkpointed(&case, params.seed ^ 0xCC, jobs, Some(&dir));
            prop_assert_eq!(
                write_blif(&resumed.patched),
                write_blif(&cold.patched),
                "resumed patch diverged (jobs={})", jobs
            );
            prop_assert_eq!(resumed.rectify.checkpoint_writes, 0);
        }
        prop_assert!(verify_rectification(&cold.patched, &case.spec).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
