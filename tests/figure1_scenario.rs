//! Integration test: the paper's Figure 1 / Examples 1–2 scenario.
//!
//! The revised specification introduces a new signal `c = a ∧ b`, re-gates
//! two multi-sink words with `c` and `¬c`, and leaves a sibling signal `d`
//! (which also reads `b`) untouched. The engine must rectify `vout` while
//! preserving `d`.

use eco_synth::lower::synthesize;
use eco_synth::rtl::{RtlModule, WordExpr as E};
use syseco::{verify_rectification, EcoOptions, Syseco};

const WIDTH: u32 = 4;

fn module(revised: bool) -> RtlModule {
    let mut m = RtlModule::new(if revised { "spec" } else { "impl" });
    m.add_input("w_in1", WIDTH);
    m.add_input("w_in2", WIDTH);
    m.add_input("a", 1);
    m.add_input("b", 1);
    m.add_signal("v0", E::input("a"));
    m.add_signal("v1", E::input("b"));
    m.add_signal("d", E::gate(E::input("w_in1"), E::input("b")));
    if revised {
        m.add_signal("c", E::and(E::input("a"), E::input("b")));
        m.add_signal(
            "vout",
            E::or(
                E::gate(E::input("w_in1"), E::signal("c")),
                E::gate(E::input("w_in2"), E::not(E::signal("c"))),
            ),
        );
    } else {
        m.add_signal(
            "vout",
            E::or(
                E::gate(E::input("w_in1"), E::signal("v0")),
                E::gate(E::input("w_in2"), E::signal("v1")),
            ),
        );
    }
    m.add_output("vout", E::signal("vout"));
    m.add_output("d", E::signal("d"));
    m
}

#[test]
fn figure1_rectification_preserves_sibling_signal() {
    let implementation = synthesize(&module(false)).expect("elaborates");
    let spec = synthesize(&module(true)).expect("elaborates");

    let engine = Syseco::new(EcoOptions::with_seed(0xF16));
    let result = engine.rectify(&implementation, &spec).expect("rectifies");

    // Full equivalence against the revised specification.
    assert!(verify_rectification(&result.patched, &spec).unwrap());

    // Every `vout` bit was revised; `d` bits were not.
    assert_eq!(result.rectify.outputs_failing, WIDTH as usize);

    // The economical solution rewires gating pins rather than replacing the
    // whole word logic: the patch must be far smaller than the vout cone.
    let vout_cone: usize = (0..WIDTH)
        .map(|i| {
            let net = spec.outputs()[spec
                .output_by_name(&format!("vout[{i}]"))
                .expect("port exists") as usize]
                .net();
            eco_netlist::topo::cone_size(&spec, net)
        })
        .sum();
    assert!(
        result.stats.gates < vout_cone,
        "patch ({} gates) should be smaller than re-synthesizing the vout \
         cones ({vout_cone} gates)",
        result.stats.gates
    );
}

#[test]
fn figure1_patch_is_deterministic() {
    let implementation = synthesize(&module(false)).expect("elaborates");
    let spec = synthesize(&module(true)).expect("elaborates");
    let engine = Syseco::new(EcoOptions::with_seed(7));
    let r1 = engine.rectify(&implementation, &spec).expect("rectifies");
    let r2 = engine.rectify(&implementation, &spec).expect("rectifies");
    assert_eq!(r1.stats, r2.stats);
    assert_eq!(r1.patch.rewires(), r2.patch.rewires());
}
