//! Property tests for resource-governed execution: a tiny wall-clock budget
//! over generated workload pairs must degrade gracefully — no panics, a
//! prompt return, an honest degradation report, and a patch that is still
//! fully verified (the output-rewire fallback guarantees completeness).

use std::time::{Duration, Instant};

use eco_workload::{build_case, CaseParams, RevisionKind};
use proptest::prelude::*;
use syseco::{verify_rectification, EcoOptions, Syseco};

fn revision_kind() -> impl Strategy<Value = RevisionKind> {
    prop_oneof![
        Just(RevisionKind::GateTermAdded),
        Just(RevisionKind::MuxBranchSwap),
        Just(RevisionKind::ConditionFlip),
        Just(RevisionKind::PolarityFlip),
        Just(RevisionKind::SingleBitFlip),
        Just(RevisionKind::SparseTrigger),
    ]
}

/// Small generator pairs: big enough for the search to do real work, small
/// enough that one proptest case stays in the hundreds of milliseconds.
fn params() -> impl Strategy<Value = CaseParams> {
    (
        any::<u64>(),
        2usize..=3,
        2u32..=3,
        3usize..=6,
        1usize..=2,
        revision_kind(),
    )
        .prop_map(
            |(seed, input_words, width, logic_signals, output_words, kind)| CaseParams {
                id: 9000,
                name: "prop-degradation",
                seed,
                input_words,
                width,
                logic_signals,
                output_words,
                revisions: vec![(0, kind)],
                heavy_optimization: false,
                aggressive_optimization: false,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tiny_budget_degrades_gracefully(params in params()) {
        let case = build_case(&params);
        let deadline = Duration::from_millis(400);
        let mut options = EcoOptions::with_seed(params.seed ^ 0xD06);
        options.timeout = Some(deadline);
        let t0 = Instant::now();
        let result = Syseco::new(options)
            .rectify(&case.implementation, &case.spec)
            .expect("a governed run degrades instead of failing");
        let elapsed = t0.elapsed();
        // "Within ~2x the deadline": the grace term absorbs the final
        // (amortized) poll interval and slow CI machines.
        prop_assert!(
            elapsed <= deadline * 2 + Duration::from_millis(1500),
            "governed run overshot its deadline: {elapsed:?}"
        );
        // Honesty: every degradation names a real output, at most once.
        let mut seen = std::collections::HashSet::new();
        for d in &result.rectify.degradations {
            prop_assert!(
                case.spec.output_by_name(&d.output).is_some(),
                "degradation names unknown output {:?}",
                d.output
            );
            prop_assert!(
                seen.insert(d.output.clone()),
                "duplicate degradation for output {:?}",
                d.output
            );
        }
        // Every output the run claims rectified must actually be
        // equivalent: the fallback keeps even a cut-short run complete.
        prop_assert!(verify_rectification(&result.patched, &case.spec).unwrap());
        result.patched.check_well_formed().unwrap();
    }

    #[test]
    fn unlimited_budget_reports_no_degradations(seed in any::<u64>()) {
        let params = CaseParams {
            id: 9001,
            name: "prop-clean",
            seed,
            input_words: 2,
            width: 2,
            logic_signals: 3,
            output_words: 1,
            revisions: vec![(0, RevisionKind::SingleBitFlip)],
            heavy_optimization: false,
            aggressive_optimization: false,
        };
        let case = build_case(&params);
        let result = Syseco::new(EcoOptions::with_seed(seed))
            .rectify(&case.implementation, &case.spec)
            .expect("rectification succeeds");
        prop_assert!(result.rectify.degradations.is_empty());
        prop_assert!(verify_rectification(&result.patched, &case.spec).unwrap());
    }
}
