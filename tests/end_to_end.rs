//! End-to-end integration: RTL → synthesis → optimization → revision →
//! rectification → verification, across every revision kind.

use eco_synth::lower::synthesize;
use eco_synth::opt::{optimize, OptOptions};
use eco_synth::rtl::{ReduceOp, RtlModule, WordExpr as E};
use eco_workload::RevisionKind;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use syseco::{verify_rectification, EcoOptions, Syseco};

const WIDTH: u32 = 4;

/// A small datapath with three word outputs.
fn base_module() -> RtlModule {
    let mut m = RtlModule::new("dp");
    m.add_input("x", WIDTH);
    m.add_input("y", WIDTH);
    m.add_input("en", 1);
    m.add_signal("s0", E::add(E::input("x"), E::input("y")));
    m.add_signal("s1", E::xor(E::signal("s0"), E::input("y")));
    m.add_signal("s2", E::mux(E::input("en"), E::signal("s1"), E::input("x")));
    m.add_signal("s3", E::and(E::signal("s2"), E::signal("s0")));
    m.add_output("o0", E::signal("s1"));
    m.add_output("o1", E::signal("s2"));
    m.add_output("o2", E::signal("s3"));
    m
}

fn revise(kind: RevisionKind, seed: u64) -> (RtlModule, RtlModule) {
    let original = base_module();
    let mut revised = original.clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    let old = revised.signal_expr("s3").expect("defined").clone();
    let helper = E::signal("s1");
    let gate_bit = E::reduce(ReduceOp::Or, E::input("en"));
    let (new_expr, _est) = kind.apply(old, helper, gate_bit, WIDTH, &mut rng);
    revised.replace_signal("s3", new_expr);
    (original, revised)
}

fn run_kind(kind: RevisionKind, heavy: bool) {
    let (original, revised) = revise(kind, 0xE2E);
    let mut implementation = synthesize(&original).expect("elaborates");
    let opt = if heavy {
        OptOptions::heavy(17)
    } else {
        OptOptions::light(17)
    };
    optimize(&mut implementation, &opt).expect("optimizes");
    let spec = synthesize(&revised).expect("elaborates");

    let engine = Syseco::new(EcoOptions::with_seed(kind as u64 + 1));
    let result = engine
        .rectify(&implementation, &spec)
        .unwrap_or_else(|e| panic!("{kind:?}: rectification failed: {e}"));
    assert!(
        verify_rectification(&result.patched, &spec).unwrap(),
        "{kind:?}: patched design must match the revised spec"
    );
    result.patched.check_well_formed().unwrap();
}

#[test]
fn rectifies_gate_term_added() {
    run_kind(RevisionKind::GateTermAdded, true);
}

#[test]
fn rectifies_mux_branch_swap() {
    run_kind(RevisionKind::MuxBranchSwap, true);
}

#[test]
fn rectifies_condition_flip() {
    run_kind(RevisionKind::ConditionFlip, true);
}

#[test]
fn rectifies_constant_change() {
    run_kind(RevisionKind::ConstantChange, true);
}

#[test]
fn rectifies_polarity_flip() {
    run_kind(RevisionKind::PolarityFlip, true);
}

#[test]
fn rectifies_single_bit_flip() {
    run_kind(RevisionKind::SingleBitFlip, true);
}

#[test]
fn rectifies_shared_gating() {
    run_kind(RevisionKind::SharedGating, true);
}

#[test]
fn rectifies_without_optimization_too() {
    // Structural similarity should not break the functional flow.
    run_kind(RevisionKind::PolarityFlip, false);
}

#[test]
fn single_bit_revision_yields_tiny_patch() {
    // The smallest revision must not trigger whole-cone fallbacks.
    let (original, revised) = revise(RevisionKind::SingleBitFlip, 99);
    let mut implementation = synthesize(&original).expect("elaborates");
    optimize(&mut implementation, &OptOptions::heavy(23)).expect("optimizes");
    let spec = synthesize(&revised).expect("elaborates");
    let result = Syseco::new(EcoOptions::with_seed(5))
        .rectify(&implementation, &spec)
        .expect("rectifies");
    assert!(verify_rectification(&result.patched, &spec).unwrap());
    assert_eq!(
        result.rectify.outputs_failing, 1,
        "exactly one bit output is revised"
    );
    assert!(
        result.stats.gates <= 4,
        "a single-bit flip needs at most an inverter's worth of patch, got {:?}",
        result.stats
    );
}
