//! End-to-end integration: RTL → synthesis → optimization → revision →
//! rectification → verification, across every revision kind.

mod common;

use common::revise;
use eco_synth::lower::synthesize;
use eco_synth::opt::{optimize, OptOptions};
use eco_workload::RevisionKind;
use syseco::{verify_rectification, EcoOptions, Syseco};

fn run_kind(kind: RevisionKind, heavy: bool) {
    let (original, revised) = revise(kind, 0xE2E);
    let mut implementation = synthesize(&original).expect("elaborates");
    let opt = if heavy {
        OptOptions::heavy(17)
    } else {
        OptOptions::light(17)
    };
    optimize(&mut implementation, &opt).expect("optimizes");
    let spec = synthesize(&revised).expect("elaborates");

    let engine = Syseco::new(EcoOptions::with_seed(kind as u64 + 1));
    let result = engine
        .rectify(&implementation, &spec)
        .unwrap_or_else(|e| panic!("{kind:?}: rectification failed: {e}"));
    assert!(
        verify_rectification(&result.patched, &spec).unwrap(),
        "{kind:?}: patched design must match the revised spec"
    );
    result.patched.check_well_formed().unwrap();
}

#[test]
fn rectifies_gate_term_added() {
    run_kind(RevisionKind::GateTermAdded, true);
}

#[test]
fn rectifies_mux_branch_swap() {
    run_kind(RevisionKind::MuxBranchSwap, true);
}

#[test]
fn rectifies_condition_flip() {
    run_kind(RevisionKind::ConditionFlip, true);
}

#[test]
fn rectifies_constant_change() {
    run_kind(RevisionKind::ConstantChange, true);
}

#[test]
fn rectifies_polarity_flip() {
    run_kind(RevisionKind::PolarityFlip, true);
}

#[test]
fn rectifies_single_bit_flip() {
    run_kind(RevisionKind::SingleBitFlip, true);
}

#[test]
fn rectifies_shared_gating() {
    run_kind(RevisionKind::SharedGating, true);
}

#[test]
fn rectifies_without_optimization_too() {
    // Structural similarity should not break the functional flow.
    run_kind(RevisionKind::PolarityFlip, false);
}

#[test]
fn single_bit_revision_yields_tiny_patch() {
    // The smallest revision must not trigger whole-cone fallbacks.
    let (original, revised) = revise(RevisionKind::SingleBitFlip, 99);
    let mut implementation = synthesize(&original).expect("elaborates");
    optimize(&mut implementation, &OptOptions::heavy(23)).expect("optimizes");
    let spec = synthesize(&revised).expect("elaborates");
    let result = Syseco::new(EcoOptions::with_seed(5))
        .rectify(&implementation, &spec)
        .expect("rectifies");
    assert!(verify_rectification(&result.patched, &spec).unwrap());
    assert_eq!(
        result.rectify.outputs_failing, 1,
        "exactly one bit output is revised"
    );
    assert!(
        result.stats.gates <= 4,
        "a single-bit flip needs at most an inverter's worth of patch, got {:?}",
        result.stats
    );
}
