//! Concurrency robustness: a multi-output case rectified with `jobs > 1`
//! under a tiny deadline (and, with the `fault-injection` feature, an
//! injected worker panic) must return promptly — no deadlock — report every
//! cut cone honestly, and still produce a fully verified patch.

use std::time::{Duration, Instant};

use eco_workload::{build_case, CaseParams, RevisionKind};
use syseco::{verify_rectification, EcoOptions, Syseco};

/// A fast multi-output case: three revised words of width 3 give nine
/// failing bit-outputs for the pool to schedule.
fn multi_output_case() -> eco_workload::EcoCase {
    build_case(&CaseParams {
        id: 9200,
        name: "robust-parallel",
        seed: 0x5EED,
        input_words: 3,
        width: 3,
        logic_signals: 6,
        output_words: 3,
        revisions: vec![
            (0, RevisionKind::PolarityFlip),
            (1, RevisionKind::ConditionFlip),
            (2, RevisionKind::SingleBitFlip),
        ],
        heavy_optimization: false,
        aggressive_optimization: false,
    })
}

#[test]
fn tiny_deadline_with_parallel_workers_degrades_instead_of_deadlocking() {
    let case = multi_output_case();
    assert!(case.revised_outputs >= 4, "needs several failing outputs");
    let deadline = Duration::from_millis(150);
    let options = EcoOptions::builder()
        .seed(0x5EED)
        .jobs(4)
        .timeout(deadline)
        .build();
    let t0 = Instant::now();
    let result = Syseco::new(options)
        .rectify(&case.implementation, &case.spec)
        .expect("a governed parallel run degrades instead of failing");
    let elapsed = t0.elapsed();
    assert!(
        elapsed <= deadline * 2 + Duration::from_millis(1500),
        "parallel governed run overshot its deadline: {elapsed:?}"
    );
    // Every cut cone shows up in the degradation report, at most once,
    // naming a real output.
    let mut seen = std::collections::HashSet::new();
    for d in &result.rectify.degradations {
        assert!(
            case.spec.output_by_name(&d.output).is_some(),
            "degradation names unknown output {:?}",
            d.output
        );
        assert!(
            seen.insert(d.output.clone()),
            "duplicate degradation for output {:?}",
            d.output
        );
    }
    // The fallback keeps even a cut-short parallel run complete.
    assert!(verify_rectification(&result.patched, &case.spec).unwrap());
    result.patched.check_well_formed().unwrap();
}

#[cfg(feature = "fault-injection")]
#[test]
fn injected_worker_panic_degrades_only_that_cone() {
    use syseco::{Budget, DegradeReason, FaultPolicy, Syseco};

    let case = multi_output_case();
    let options = EcoOptions::builder().seed(0x5EED).jobs(4).build();
    // Panic inside the second per-output search; all other cones must be
    // unaffected.
    let budget = Budget::unlimited().with_faults(FaultPolicy {
        panic_at: Some(2),
        ..FaultPolicy::default()
    });
    let result = Syseco::new(options)
        .rectify_with_budget(&case.implementation, &case.spec, &budget)
        .expect("a panicking worker degrades its cone, not the run");
    let panicked: Vec<_> = result
        .rectify
        .degradations
        .iter()
        .filter(|d| matches!(d.reason, DegradeReason::SearchPanicked(_)))
        .collect();
    assert_eq!(
        panicked.len(),
        1,
        "exactly one cone panicked: {:?}",
        result.rectify.degradations
    );
    assert!(verify_rectification(&result.patched, &case.spec).unwrap());
    result.patched.check_well_formed().unwrap();
}

/// A contained worker panic must not poison the sharded metrics registry
/// (or any other shared lock): taking a snapshot afterwards works, shows
/// the run's activity, and the same telemetry handle keeps serving
/// subsequent runs.
#[cfg(feature = "fault-injection")]
#[test]
fn worker_panic_leaves_metrics_registry_usable() {
    use syseco::{Budget, FaultPolicy, Session, Telemetry};

    let case = multi_output_case();
    let telemetry = Telemetry::enabled();
    let session =
        Session::new(EcoOptions::builder().seed(0x5EED).jobs(4).build()).with_telemetry(&telemetry);
    let budget = Budget::unlimited().with_faults(FaultPolicy {
        panic_at: Some(1),
        ..FaultPolicy::default()
    });
    session
        .run_with_budget(&case.implementation, &case.spec, &budget)
        .expect("the panicking cone degrades, the run completes");

    // The registry lock survived the panic: a snapshot both succeeds and
    // reflects the completed run.
    let snapshot = session.metrics_snapshot();
    assert!(
        snapshot
            .counters()
            .any(|(name, value)| name == "rectify.validations" && value > 0),
        "snapshot shows no search activity after a contained panic"
    );

    // And a clean follow-up run on the same telemetry handle still works,
    // registering fresh shards and folding them into the next snapshot.
    session
        .run_with_budget(&case.implementation, &case.spec, &Budget::unlimited())
        .expect("clean run after a contained panic");
    let after = session.metrics_snapshot();
    let validations = |s: &syseco::MetricsSnapshot| {
        s.counters()
            .find(|(name, _)| *name == "rectify.validations")
            .map_or(0, |(_, v)| v)
    };
    assert!(
        validations(&after) > validations(&snapshot),
        "second run's metrics did not land in the registry"
    );
}
