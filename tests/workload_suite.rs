//! Integration test over generated benchmark cases: the full syseco flow on
//! real suite members (small ones, to keep CI time bounded).

use eco_workload::{build_case, table1_params, timing_params};
use syseco::{verify_rectification, EcoOptions, Syseco};

/// Case 5 is the smallest Table-1 case; it exercises multiple revision
/// kinds (polarity, condition flip, single bit).
#[test]
fn suite_case5_rectifies_and_verifies() {
    let params = &table1_params()[4];
    assert_eq!(params.id, 5);
    let case = build_case(params);
    let engine = Syseco::new(EcoOptions::default());
    let result = engine
        .rectify(&case.implementation, &case.spec)
        .expect("rectification succeeds");
    assert!(verify_rectification(&result.patched, &case.spec).unwrap());
    assert!(result.rectify.outputs_failing > 0, "revision is observable");
    result.patched.check_well_formed().unwrap();
}

#[test]
fn suite_case2_rectifies_and_verifies() {
    let params = &table1_params()[1];
    assert_eq!(params.id, 2);
    let case = build_case(params);
    let engine = Syseco::new(EcoOptions::default());
    let result = engine
        .rectify(&case.implementation, &case.spec)
        .expect("rectification succeeds");
    assert!(verify_rectification(&result.patched, &case.spec).unwrap());
    // Case 2 revises two thirds of the outputs.
    let total = case.implementation.num_outputs();
    assert!(result.rectify.outputs_failing * 3 >= total);
}

#[test]
fn timing_case_rectifies_with_level_driven_selection() {
    let params = &timing_params()[0];
    let case = build_case(params);
    let mut options = EcoOptions::with_seed(0x713);
    options.level_driven = true;
    let result = Syseco::new(options)
        .rectify(&case.implementation, &case.spec)
        .expect("rectification succeeds");
    assert!(verify_rectification(&result.patched, &case.spec).unwrap());
}

#[test]
fn suite_cases_are_deterministic() {
    let params = &table1_params()[4];
    let a = build_case(params);
    let b = build_case(params);
    assert_eq!(a.implementation_stats(), b.implementation_stats());
    assert_eq!(a.designer_estimate, b.designer_estimate);
}

#[test]
fn all_suite_params_have_distinct_seeds() {
    let mut seeds: Vec<u64> = table1_params()
        .iter()
        .chain(timing_params().iter())
        .map(|p| p.seed)
        .collect();
    let n = seeds.len();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), n, "cases must not share generator seeds");
}
