//! Determinism across worker counts: the scheduler partitions per-output
//! searches over a thread pool, but seeds each cone from the run seed and
//! merges in a fixed order, so `jobs = 1` and `jobs = 8` must produce
//! byte-identical patched netlists, identical rewire lists, and identical
//! statistics (modulo wall-clock, which `RectifyStats::normalized` zeroes).

mod common;

use common::case_params;
use eco_netlist::write_blif;
use eco_workload::{build_case, CaseParams};
use proptest::prelude::*;
use syseco::{verify_rectification, EcoOptions, Syseco};

/// Multi-output generator pairs: wide enough that the pool has several
/// failing cones to schedule, small enough for quick proptest cases.
fn params() -> impl Strategy<Value = CaseParams> {
    case_params(9100, "prop-parallel")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn jobs_do_not_change_the_result(params in params()) {
        let case = build_case(&params);
        let run = |jobs: usize| {
            let options = EcoOptions::builder()
                .seed(params.seed ^ 0x9A12)
                .jobs(jobs)
                .build();
            Syseco::new(options)
                .rectify(&case.implementation, &case.spec)
                .expect("rectification succeeds")
        };
        let serial = run(1);
        let wide = run(8);
        prop_assert_eq!(
            write_blif(&serial.patched),
            write_blif(&wide.patched),
            "patched netlists must be byte-identical across worker counts"
        );
        prop_assert_eq!(
            format!("{:?}", serial.patch.rewires()),
            format!("{:?}", wide.patch.rewires())
        );
        prop_assert_eq!(
            format!("{:?}", serial.rectify.normalized()),
            format!("{:?}", wide.rectify.normalized())
        );
        prop_assert!(verify_rectification(&serial.patched, &case.spec).unwrap());
    }
}
