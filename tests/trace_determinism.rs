//! Trace determinism across worker counts: spans are recorded into
//! per-merge-slot lanes and concatenated in slot order, and every metric
//! except the timing histograms is derived from deterministic search work,
//! so the normalized JSONL trace and the counter/gauge snapshot of a
//! `jobs = 1` run must be identical to a `jobs = 4` run on the same seed.

mod common;

use common::tmp_dir;
use eco_workload::{build_case, CaseParams, RevisionKind};
use syseco::telemetry::export::spans_jsonl;
use syseco::telemetry::profile::Profile;
use syseco::telemetry::report::{render, MetricsDoc, ReportOptions};
use syseco::telemetry::{names, Counter, Gauge, Histogram};
use syseco::{EcoOptions, Session, Telemetry};

fn multi_output_params(seed: u64) -> CaseParams {
    CaseParams {
        id: 9200,
        name: "trace-determinism",
        seed,
        input_words: 2,
        width: 3,
        logic_signals: 6,
        output_words: 3,
        revisions: vec![
            (0, RevisionKind::GateTermAdded),
            (1, RevisionKind::ConditionFlip),
            (2, RevisionKind::PolarityFlip),
        ],
        heavy_optimization: false,
        aggressive_optimization: false,
    }
}

/// Runs one rectification with a fresh telemetry hub, returning the
/// normalized span JSONL plus the counter/gauge snapshot.
fn traced_run(case_seed: u64, jobs: usize) -> (String, Vec<(&'static str, u64)>) {
    let case = build_case(&multi_output_params(case_seed));
    let telemetry = Telemetry::enabled();
    let session = Session::new(
        EcoOptions::builder()
            .seed(case_seed ^ 0x7E1E)
            .jobs(jobs)
            .build(),
    )
    .with_telemetry(&telemetry);
    let result = session
        .run(&case.implementation, &case.spec)
        .expect("rectification succeeds");
    let snap = session.metrics_snapshot();
    let mut metrics: Vec<(&'static str, u64)> = Counter::ALL
        .iter()
        .map(|&c| (c.name(), snap.counter(c)))
        .collect();
    metrics.extend(Gauge::ALL.iter().map(|&g| (g.name(), snap.gauge(g))));
    (spans_jsonl(&result.trace, true), metrics)
}

#[test]
fn jobs_do_not_change_the_normalized_trace() {
    for case_seed in [11u64, 5309] {
        let (serial_trace, serial_metrics) = traced_run(case_seed, 1);
        let (wide_trace, wide_metrics) = traced_run(case_seed, 4);
        assert!(
            serial_trace.lines().any(|l| l.contains("\"name\":\"run\"")),
            "trace must contain the run span:\n{serial_trace}"
        );
        assert!(
            serial_trace
                .lines()
                .any(|l| l.contains("\"name\":\"search\"")),
            "trace must contain per-output search spans:\n{serial_trace}"
        );
        assert_eq!(
            serial_trace, wide_trace,
            "normalized span JSONL must be identical across worker counts (seed {case_seed})"
        );
        assert_eq!(
            serial_metrics, wide_metrics,
            "counters and gauges must be identical across worker counts (seed {case_seed})"
        );
    }
}

/// With the BDD manager's automatic GC and sifting thresholds forced low
/// enough to fire during the per-output searches, the engine must stay
/// bit-deterministic across worker counts: GC and reorder run inside each
/// output's own manager against a deterministic operation sequence, so
/// `bdd.gc.runs`, `bdd.reorders`, the prefilter counters, and the patch
/// itself are independent of `jobs`.
#[test]
fn gc_and_reorder_do_not_break_determinism_across_jobs() {
    let case = build_case(&multi_output_params(11));
    let mut runs = Vec::new();
    for jobs in [1usize, 4] {
        let telemetry = Telemetry::enabled();
        let session = Session::new(
            EcoOptions::builder()
                .seed(11 ^ 0x7E1E)
                .jobs(jobs)
                .bdd_gc_threshold(Some(64))
                .bdd_reorder_threshold(Some(96))
                .build(),
        )
        .with_telemetry(&telemetry);
        let result = session
            .run(&case.implementation, &case.spec)
            .expect("rectification succeeds under forced GC/reorder");
        let snap = session.metrics_snapshot();
        let metrics: Vec<(&'static str, u64)> = Counter::ALL
            .iter()
            .map(|&c| (c.name(), snap.counter(c)))
            .collect();
        runs.push((
            result.patch.rewires().to_vec(),
            result.rectify.normalized(),
            spans_jsonl(&result.trace, true),
            metrics,
        ));
    }
    let (p1, s1, t1, m1) = &runs[0];
    let (p4, s4, t4, m4) = &runs[1];
    assert_eq!(p1, p4, "patch must be identical across worker counts");
    assert_eq!(s1, s4, "normalized stats must match across worker counts");
    assert_eq!(t1, t4, "normalized trace must match across worker counts");
    assert_eq!(m1, m4, "counters must match across worker counts");
    // The forced thresholds are low enough that the machinery actually ran:
    // this test guards live GC/sifting, not the no-op path.
    let counter = |name: &str| {
        m1.iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
    };
    assert!(
        counter("bdd.gc.runs") >= 1,
        "forced GC threshold never fired"
    );
    assert!(
        counter("bdd.reorders") >= 1,
        "forced reorder threshold never fired"
    );
    // Prefilter accounting: every examined candidate is screened or passed,
    // and only passed candidates may consume validation slots.
    assert!(
        counter("prefilter.screened") + counter("prefilter.passed") <= counter("rectify.choices"),
        "prefilter verdicts cannot exceed choices examined"
    );
    assert!(
        counter("prefilter.passed") <= counter("rectify.validations"),
        "passed candidates must all have gone to validation"
    );
}

/// Runs one rectification and renders the default (wall-clock-free)
/// markdown run report from its spans and metrics.
fn rendered_report(case_seed: u64, jobs: usize, dir: Option<&std::path::Path>) -> String {
    let case = build_case(&multi_output_params(case_seed));
    let telemetry = Telemetry::enabled();
    let mut builder = EcoOptions::builder().seed(case_seed ^ 0x7E1E).jobs(jobs);
    if let Some(dir) = dir {
        builder = builder.checkpoint_dir(dir.to_path_buf());
    }
    let session = Session::new(builder.build()).with_telemetry(&telemetry);
    let result = session
        .run(&case.implementation, &case.spec)
        .expect("rectification succeeds");
    let profile = Profile::from_spans(&result.trace);
    render(
        &profile,
        &MetricsDoc::from(&session.metrics_snapshot()),
        &ReportOptions::default(),
    )
}

/// The profiler tree and the default run report are built only from
/// deterministic span data, so both must be byte-identical at one and
/// four workers.
#[test]
fn profiler_tree_and_report_are_identical_across_jobs() {
    let serial = rendered_report(11, 1, None);
    let wide = rendered_report(11, 4, None);
    for section in [
        "# syseco run report",
        "## Hot paths",
        "## Per-output cost ranking",
    ] {
        assert!(
            serial.contains(section),
            "report missing {section:?}:\n{serial}"
        );
    }
    assert_eq!(
        serial, wide,
        "rendered run report must be byte-identical across worker counts"
    );
}

/// Satellite guard for the name registry: a full instrumented run must
/// not record any counter, gauge, or histogram outside the documented
/// set in `eco_telemetry::names` (DESIGN.md §14).
#[test]
fn full_run_snapshot_stays_within_the_documented_name_registry() {
    let case = build_case(&multi_output_params(11));
    let telemetry = Telemetry::enabled();
    let session =
        Session::new(EcoOptions::builder().seed(11).jobs(2).build()).with_telemetry(&telemetry);
    session
        .run(&case.implementation, &case.spec)
        .expect("rectification succeeds");
    let snap = session.metrics_snapshot();
    let recorded: Vec<&'static str> = snap
        .counters()
        .map(|(name, _)| name)
        .chain(snap.gauges().map(|(name, _)| name))
        .chain(Histogram::ALL.iter().map(|h| h.name()))
        .collect();
    for name in &recorded {
        assert!(
            names::ALL_METRIC_NAMES.contains(name),
            "metric {name:?} is not in the documented registry (names::ALL_METRIC_NAMES)"
        );
    }
    // And the snapshot exposes the complete registry, so exports never
    // silently drop a documented metric.
    assert_eq!(recorded.len(), names::ALL_METRIC_NAMES.len());
}

/// A fully resumed run records zero-work placeholder searches instead of
/// real ones, but its report must still be byte-identical across worker
/// counts.
#[test]
fn report_is_stable_across_checkpoint_resume() {
    let dir = tmp_dir("trace-report-resume");
    let cold = rendered_report(5309, 1, Some(&dir));
    let resumed_serial = rendered_report(5309, 1, Some(&dir));
    let resumed_wide = rendered_report(5309, 4, Some(&dir));
    assert_eq!(
        resumed_serial, resumed_wide,
        "resumed-run report must be byte-identical across worker counts"
    );
    assert_ne!(
        cold, resumed_serial,
        "a fully resumed run reports different (zero-work) searches"
    );
    assert!(
        resumed_serial.contains("resume skipped"),
        "resumed report must narrate the checkpoint resume:\n{resumed_serial}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill the run mid-flight, resume from the checkpoint at one and four
/// workers: the resumed reports must match each other byte for byte.
#[cfg(feature = "fault-injection")]
#[test]
fn report_is_stable_across_kill_and_resume() {
    use syseco::telemetry::report::parse_metrics_json;
    use syseco::{Budget, EcoError, FaultPlan};

    let case = build_case(&multi_output_params(11));
    let dir = tmp_dir("trace-report-kill");
    // Crash at the first commit: some outputs are checkpointed, the rest
    // still need a live search on resume.
    let options = EcoOptions::builder()
        .seed(11 ^ 0x7E1E)
        .jobs(1)
        .checkpoint_dir(&dir)
        .build();
    let plan = FaultPlan::parse("abort:commit@1").unwrap();
    match Session::new(options).run_with_budget(
        &case.implementation,
        &case.spec,
        &Budget::unlimited().with_fault_plan(plan),
    ) {
        Err(EcoError::InjectedAbort) => {}
        other => panic!("expected the injected abort to fire, got {other:?}"),
    }

    let mut reports = Vec::new();
    for jobs in [1usize, 4] {
        let telemetry = Telemetry::enabled();
        // Rerun from a copy of the crashed state: resume what the first
        // commit persisted, search the rest.
        let snapshot_dir = tmp_dir(&format!("trace-report-kill-j{jobs}"));
        copy_dir(&dir, &snapshot_dir);
        let options_copy = EcoOptions::builder()
            .seed(11 ^ 0x7E1E)
            .jobs(jobs)
            .checkpoint_dir(&snapshot_dir)
            .build();
        let session = Session::new(options_copy).with_telemetry(&telemetry);
        let result = session
            .run(&case.implementation, &case.spec)
            .expect("resume succeeds");
        assert!(
            result.rectify.checkpoint_hits > 0,
            "the crashed run must have persisted at least one output"
        );
        let profile = Profile::from_spans(&result.trace);
        let doc = parse_metrics_json(&syseco::telemetry::export::metrics_json(
            &session.metrics_snapshot(),
        ))
        .expect("metrics JSON round-trips");
        reports.push(render(&profile, &doc, &ReportOptions::default()));
        let _ = std::fs::remove_dir_all(&snapshot_dir);
    }
    assert_eq!(
        reports[0], reports[1],
        "post-crash resumed reports must be byte-identical across worker counts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "fault-injection")]
fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).expect("create checkpoint copy");
    for entry in std::fs::read_dir(from).expect("read checkpoint dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy checkpoint record");
    }
}

#[test]
fn lanes_follow_merge_slots_not_workers() {
    let case = build_case(&multi_output_params(77));
    let telemetry = Telemetry::enabled();
    let session =
        Session::new(EcoOptions::builder().seed(77).jobs(4).build()).with_telemetry(&telemetry);
    let result = session
        .run(&case.implementation, &case.spec)
        .expect("rectification succeeds");
    let search_lanes: Vec<u32> = result
        .trace
        .iter()
        .filter(|s| s.name == "search")
        .map(|s| s.lane)
        .collect();
    // One search lane per failing output, numbered 1..=n in merge order.
    let expect: Vec<u32> = (1..=search_lanes.len() as u32).collect();
    assert_eq!(search_lanes, expect);
    // The coordinator phases all live on lane 0.
    for name in ["run", "detect", "merge"] {
        assert!(
            result.trace.iter().any(|s| s.name == name && s.lane == 0),
            "missing lane-0 span {name:?}"
        );
    }
}
