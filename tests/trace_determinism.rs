//! Trace determinism across worker counts: spans are recorded into
//! per-merge-slot lanes and concatenated in slot order, and every metric
//! except the timing histograms is derived from deterministic search work,
//! so the normalized JSONL trace and the counter/gauge snapshot of a
//! `jobs = 1` run must be identical to a `jobs = 4` run on the same seed.

use eco_workload::{build_case, CaseParams, RevisionKind};
use syseco::telemetry::export::spans_jsonl;
use syseco::telemetry::{Counter, Gauge};
use syseco::{EcoOptions, Session, Telemetry};

fn multi_output_params(seed: u64) -> CaseParams {
    CaseParams {
        id: 9200,
        name: "trace-determinism",
        seed,
        input_words: 2,
        width: 3,
        logic_signals: 6,
        output_words: 3,
        revisions: vec![
            (0, RevisionKind::GateTermAdded),
            (1, RevisionKind::ConditionFlip),
            (2, RevisionKind::PolarityFlip),
        ],
        heavy_optimization: false,
        aggressive_optimization: false,
    }
}

/// Runs one rectification with a fresh telemetry hub, returning the
/// normalized span JSONL plus the counter/gauge snapshot.
fn traced_run(case_seed: u64, jobs: usize) -> (String, Vec<(&'static str, u64)>) {
    let case = build_case(&multi_output_params(case_seed));
    let telemetry = Telemetry::enabled();
    let session = Session::new(
        EcoOptions::builder()
            .seed(case_seed ^ 0x7E1E)
            .jobs(jobs)
            .build(),
    )
    .with_telemetry(&telemetry);
    let result = session
        .run(&case.implementation, &case.spec)
        .expect("rectification succeeds");
    let snap = session.metrics_snapshot();
    let mut metrics: Vec<(&'static str, u64)> = Counter::ALL
        .iter()
        .map(|&c| (c.name(), snap.counter(c)))
        .collect();
    metrics.extend(Gauge::ALL.iter().map(|&g| (g.name(), snap.gauge(g))));
    (spans_jsonl(&result.trace, true), metrics)
}

#[test]
fn jobs_do_not_change_the_normalized_trace() {
    for case_seed in [11u64, 5309] {
        let (serial_trace, serial_metrics) = traced_run(case_seed, 1);
        let (wide_trace, wide_metrics) = traced_run(case_seed, 4);
        assert!(
            serial_trace.lines().any(|l| l.contains("\"name\":\"run\"")),
            "trace must contain the run span:\n{serial_trace}"
        );
        assert!(
            serial_trace
                .lines()
                .any(|l| l.contains("\"name\":\"search\"")),
            "trace must contain per-output search spans:\n{serial_trace}"
        );
        assert_eq!(
            serial_trace, wide_trace,
            "normalized span JSONL must be identical across worker counts (seed {case_seed})"
        );
        assert_eq!(
            serial_metrics, wide_metrics,
            "counters and gauges must be identical across worker counts (seed {case_seed})"
        );
    }
}

#[test]
fn lanes_follow_merge_slots_not_workers() {
    let case = build_case(&multi_output_params(77));
    let telemetry = Telemetry::enabled();
    let session =
        Session::new(EcoOptions::builder().seed(77).jobs(4).build()).with_telemetry(&telemetry);
    let result = session
        .run(&case.implementation, &case.spec)
        .expect("rectification succeeds");
    let search_lanes: Vec<u32> = result
        .trace
        .iter()
        .filter(|s| s.name == "search")
        .map(|s| s.lane)
        .collect();
    // One search lane per failing output, numbered 1..=n in merge order.
    let expect: Vec<u32> = (1..=search_lanes.len() as u32).collect();
    assert_eq!(search_lanes, expect);
    // The coordinator phases all live on lane 0.
    for name in ["run", "detect", "merge"] {
        assert!(
            result.trace.iter().any(|s| s.name == name && s.lane == 0),
            "missing lane-0 span {name:?}"
        );
    }
}
