//! End-to-end daemon tests: an in-process `syseco::serve::Server` backed
//! by the real [`EngineRunner`], driven over real TCP connections with the
//! framed protocol client (DESIGN.md §15).
//!
//! Everything here is deterministic by construction: single-worker
//! configurations serialize claims, progress frames are used to observe
//! "job A is running" before racing job B against it, and tests that
//! need the worker to *stay* occupied hold it with a [`GatedRunner`]
//! instead of betting on engine slowness.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use eco_fuzz::{generate, generate_chain, ScenarioConfig};
use eco_netlist::write_blif;
use syseco::serve::{
    Client, JobControl, JobOutcome, JobRequest, JobRunner, JobStatus, Message, RejectReason,
    SchedulerConfig, Server, ServerConfig, SubmitReply,
};
use syseco::telemetry::Counter;
use syseco::{EcoOptions, EngineRunner, Session, Telemetry};

/// A moderately sized fuzz scenario for the queueing tests. Worker
/// occupancy is enforced by the daemon's gate, not by scenario size.
fn busy_config() -> ScenarioConfig {
    ScenarioConfig {
        input_words: (4, 4),
        width: (3, 3),
        logic_signals: (24, 24),
        output_words: (4, 4),
        mutations: (3, 4),
        heavy_optimization: false,
    }
}

/// Holds every `run` call until the test opens the gate (or the job is
/// cancel-flagged by drain), so "job A occupies the worker while B
/// queues behind it" is a property the test enforces rather than a bet
/// on the engine being slow enough.
struct GatedRunner {
    inner: EngineRunner,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl JobRunner for GatedRunner {
    fn run(&self, request: &JobRequest, control: &JobControl) -> JobOutcome {
        let (open, released) = &*self.gate;
        let mut is_open = open.lock().unwrap();
        while !*is_open && !control.is_cancelled() {
            is_open = released
                .wait_timeout(is_open, Duration::from_millis(5))
                .unwrap()
                .0;
        }
        drop(is_open);
        self.inner.run(request, control)
    }
}

/// Scheduler config whose default deadline is far beyond any debug-build
/// engine run, so time grants never expire under test-harness contention
/// and `Completed` assertions stay deterministic.
fn patient() -> SchedulerConfig {
    SchedulerConfig {
        default_deadline: std::time::Duration::from_secs(3600),
        ..SchedulerConfig::default()
    }
}

fn request_from_seed(client: &str, seed: u64, config: &ScenarioConfig) -> JobRequest {
    let scenario = generate(seed, config).expect("scenario generation");
    let mut request = JobRequest::new(
        client,
        write_blif(&scenario.implementation),
        write_blif(&scenario.spec),
    );
    request.seed = seed;
    request
}

struct Daemon {
    addr: String,
    shutdown: Arc<AtomicBool>,
    telemetry: Telemetry,
    thread: JoinHandle<std::io::Result<()>>,
    root: PathBuf,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl Daemon {
    /// Binds and runs a daemon with `workers` engine workers and a shared
    /// cache + checkpoint store under a fresh temp root.
    fn start(name: &str, workers: usize, sched: SchedulerConfig) -> Daemon {
        Daemon::start_gated(name, workers, sched, true)
    }

    /// Like [`Daemon::start`], but claimed jobs block inside the engine
    /// runner until [`Daemon::release`] — or a drain cancel-flag — lets
    /// them proceed.
    fn start_held(name: &str, workers: usize, sched: SchedulerConfig) -> Daemon {
        Daemon::start_gated(name, workers, sched, false)
    }

    fn start_gated(name: &str, workers: usize, sched: SchedulerConfig, open: bool) -> Daemon {
        let root =
            std::env::temp_dir().join(format!("syseco-serve-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("cache")).unwrap();
        std::fs::create_dir_all(root.join("ckpt")).unwrap();
        let base = EcoOptions::builder()
            .jobs(1)
            .cache_dir(root.join("cache"))
            .checkpoint_dir(root.join("ckpt"))
            .build();
        let telemetry = Telemetry::enabled();
        let gate = Arc::new((Mutex::new(open), Condvar::new()));
        let runner = Arc::new(GatedRunner {
            inner: EngineRunner::new(base, telemetry.clone()),
            gate: gate.clone(),
        });
        let server = Server::bind(
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                http_addr: None,
                workers,
                sched,
            },
            runner,
            telemetry.clone(),
        )
        .expect("bind");
        let addr = server.addr().unwrap().to_string();
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        Daemon {
            addr,
            shutdown,
            telemetry,
            thread,
            root,
            gate,
        }
    }

    /// Opens the gate: held jobs proceed into the real engine.
    fn release(&self) {
        let (open, released) = &*self.gate;
        *open.lock().unwrap() = true;
        released.notify_all();
    }

    fn stop(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.thread.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn accept(reply: SubmitReply) -> u64 {
    match reply {
        SubmitReply::Accepted(id) => id,
        SubmitReply::Rejected { reason, detail } => {
            panic!("unexpected rejection: {} ({detail})", reason.label())
        }
    }
}

/// Waits until the daemon reports `job_id` as running (its first
/// progress frame), so later submissions deterministically queue behind.
fn wait_running(client: &mut Client, job_id: u64) {
    loop {
        match client.recv().expect("progress frame") {
            Message::Progress { job_id: id, stage } if id == job_id && stage == "running" => return,
            Message::Progress { .. } => {}
            other => panic!("expected progress, got kind {}", other.kind()),
        }
    }
}

#[test]
fn completed_cancelled_and_expired_jobs_are_all_accounted() {
    let daemon = Daemon::start_held("accounting", 1, patient());
    let config = busy_config();

    // A runs; B and C queue behind it on the single worker.
    let mut client_a = Client::connect(&daemon.addr).unwrap();
    let id_a = accept(
        client_a
            .submit(&request_from_seed("tenant-a", 40, &config))
            .unwrap(),
    );
    wait_running(&mut client_a, id_a);

    let mut client_b = Client::connect(&daemon.addr).unwrap();
    let id_b = accept(
        client_b
            .submit(&request_from_seed("tenant-b", 41, &config))
            .unwrap(),
    );
    client_b.cancel(id_b).unwrap();

    let mut client_c = Client::connect(&daemon.addr).unwrap();
    let mut late = request_from_seed("tenant-c", 42, &config);
    late.deadline_ms = 1;
    let id_c = accept(client_c.submit(&late).unwrap());

    // Let C's 1 ms deadline lapse while A still holds the worker, then
    // open the gate so A can finish and C can be claimed (and expired).
    std::thread::sleep(Duration::from_millis(10));
    daemon.release();

    let done_a = client_a.wait_done(id_a).unwrap();
    assert_eq!(done_a.status, JobStatus::Completed, "{}", done_a.detail);
    assert!(!done_a.patch_blif.is_empty());

    // Cancelled while queued: resolved without touching the engine.
    let done_b = client_b.wait_done(id_b).unwrap();
    assert_eq!(done_b.status, JobStatus::Cancelled, "{}", done_b.detail);

    // Its 1 ms deadline passed while A ran: expired at claim time.
    let done_c = client_c.wait_done(id_c).unwrap();
    assert_eq!(done_c.status, JobStatus::Expired, "{}", done_c.detail);

    // The daemon patch is byte-identical to the CLI path: a plain Session
    // over the same BLIF text the wire carried (the CLI parses its inputs
    // from files exactly like the daemon parses them from frames).
    let sent = request_from_seed("tenant-a", 40, &config);
    let direct = Session::new(EcoOptions::builder().seed(40).jobs(1).build())
        .run(
            &eco_netlist::read_blif(&sent.impl_blif).unwrap(),
            &eco_netlist::read_blif(&sent.spec_blif).unwrap(),
        )
        .unwrap();
    assert_eq!(done_a.patch_blif, write_blif(&direct.patched));

    // Every admitted job shows up as exactly one terminal counter.
    let snapshot = daemon.telemetry.snapshot();
    assert_eq!(snapshot.counter(Counter::ServeSubmitted), 3);
    assert_eq!(snapshot.counter(Counter::ServeAdmitted), 3);
    assert_eq!(snapshot.counter(Counter::ServeCompleted), 1);
    assert_eq!(snapshot.counter(Counter::ServeCancelled), 1);
    assert_eq!(snapshot.counter(Counter::ServeExpired), 1);
    assert_eq!(snapshot.counter(Counter::ServeFailed), 0);
    daemon.stop();
}

#[test]
fn bounded_admission_rejects_overload_and_recovers() {
    let sched = SchedulerConfig {
        lane_capacity: 1,
        ..patient()
    };
    let daemon = Daemon::start_held("overload", 1, sched);
    let config = busy_config();

    let mut client_a = Client::connect(&daemon.addr).unwrap();
    let id_a = accept(
        client_a
            .submit(&request_from_seed("tenant-a", 50, &config))
            .unwrap(),
    );
    wait_running(&mut client_a, id_a);

    // A is active, so B fills the lane's single queue slot and C bounces.
    let mut client_b = Client::connect(&daemon.addr).unwrap();
    let id_b = accept(
        client_b
            .submit(&request_from_seed("tenant-b", 51, &config))
            .unwrap(),
    );
    let mut client_c = Client::connect(&daemon.addr).unwrap();
    match client_c
        .submit(&request_from_seed("tenant-c", 52, &config))
        .unwrap()
    {
        SubmitReply::Rejected { reason, .. } => assert_eq!(reason, RejectReason::Overloaded),
        SubmitReply::Accepted(id) => panic!("job {id} admitted past a full lane"),
    }

    // Backpressure is transient: once the queue drains, C's retry lands.
    daemon.release();
    assert_eq!(
        client_a.wait_done(id_a).unwrap().status,
        JobStatus::Completed
    );
    assert_eq!(
        client_b.wait_done(id_b).unwrap().status,
        JobStatus::Completed
    );
    let id_c = accept(
        client_c
            .submit(&request_from_seed("tenant-c", 52, &config))
            .unwrap(),
    );
    let done_c = client_c.wait_done(id_c).unwrap();
    assert_eq!(done_c.status, JobStatus::Completed, "{}", done_c.detail);

    let snapshot = daemon.telemetry.snapshot();
    assert_eq!(snapshot.counter(Counter::ServeRejected), 1);
    assert_eq!(snapshot.counter(Counter::ServeAdmitted), 3);
    daemon.stop();
}

#[test]
fn revision_chain_reuses_the_shared_cache_across_jobs() {
    let daemon = Daemon::start("chain", 2, patient());
    let chain = generate_chain(7, &ScenarioConfig::default(), 3).unwrap();

    for (step, scenario) in chain.iter().enumerate() {
        let mut client = Client::connect(&daemon.addr).unwrap();
        let mut request = JobRequest::new(
            "tenant-chain",
            write_blif(&scenario.implementation),
            write_blif(&scenario.spec),
        );
        request.seed = 7;
        request.tag = format!("rev-{step}");
        let id = accept(client.submit(&request).unwrap());
        let done = client.wait_done(id).unwrap();
        // Accumulated mutations may legitimately push a revision onto the
        // degradation ladder; what matters here is honest resolution.
        assert!(
            matches!(done.status, JobStatus::Completed | JobStatus::Degraded),
            "rev {step}: {} ({})",
            done.status.label(),
            done.detail
        );
        assert!(!done.patch_blif.is_empty(), "rev {step} patch");
    }

    // Later revisions re-present the same implementation cones, so the
    // shared store must have produced real cross-job hits, and the cache
    // directory must have been populated by the daemon.
    let snapshot = daemon.telemetry.snapshot();
    assert!(
        snapshot.counter(Counter::CacheHits) > 0,
        "revision chain produced no cross-job cache hits"
    );
    let segments = std::fs::read_dir(daemon.root.join("cache"))
        .unwrap()
        .count();
    assert!(segments > 0, "shared cache directory is empty");
    daemon.stop();
}

#[test]
fn shutdown_frame_drains_queued_jobs_and_stops_the_daemon() {
    let daemon = Daemon::start_held("drain", 1, patient());
    let config = busy_config();

    let mut client_a = Client::connect(&daemon.addr).unwrap();
    let id_a = accept(
        client_a
            .submit(&request_from_seed("tenant-a", 60, &config))
            .unwrap(),
    );
    wait_running(&mut client_a, id_a);
    let mut client_b = Client::connect(&daemon.addr).unwrap();
    let id_b = accept(
        client_b
            .submit(&request_from_seed("tenant-b", 61, &config))
            .unwrap(),
    );

    // The frame-level SIGTERM: drain resolves the running job (cancelled
    // mid-engine, with whatever honest patch it had) and the queued one.
    // The gate stays closed — A is parked inside the runner until drain's
    // cancel-flag reaches it, which proves B could never have been
    // claimed before drain resolved it as Cancelled.
    let mut controller = Client::connect(&daemon.addr).unwrap();
    controller.shutdown_daemon().unwrap();

    let done_a = client_a.wait_done(id_a).unwrap();
    assert!(
        matches!(done_a.status, JobStatus::Cancelled | JobStatus::Completed),
        "running job must resolve on drain, got {}",
        done_a.status.label()
    );
    let done_b = client_b.wait_done(id_b).unwrap();
    assert_eq!(done_b.status, JobStatus::Cancelled, "{}", done_b.detail);

    daemon.thread.join().unwrap().unwrap();
    let snapshot = daemon.telemetry.snapshot();
    assert_eq!(
        snapshot.counter(Counter::ServeAdmitted),
        snapshot.counter(Counter::ServeCompleted) + snapshot.counter(Counter::ServeCancelled),
    );
    let _ = std::fs::remove_dir_all(&daemon.root);
}
