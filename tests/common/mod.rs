//! Helpers shared by the workspace integration tests: the reference RTL
//! datapath and its revisions (`base_module`/`revise`), proptest
//! strategies over generator cases (`revision_kind`/`case_params`), and
//! scratch-directory management (`tmp_dir`). Each test binary compiles
//! its own copy, so helpers unused by a given test are expected.
#![allow(dead_code)]

use std::path::PathBuf;

use eco_synth::rtl::{ReduceOp, RtlModule, WordExpr as E};
use eco_workload::{CaseParams, RevisionKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Word width of the reference datapath.
pub const WIDTH: u32 = 4;

/// A small datapath with three word outputs.
pub fn base_module() -> RtlModule {
    let mut m = RtlModule::new("dp");
    m.add_input("x", WIDTH);
    m.add_input("y", WIDTH);
    m.add_input("en", 1);
    m.add_signal("s0", E::add(E::input("x"), E::input("y")));
    m.add_signal("s1", E::xor(E::signal("s0"), E::input("y")));
    m.add_signal("s2", E::mux(E::input("en"), E::signal("s1"), E::input("x")));
    m.add_signal("s3", E::and(E::signal("s2"), E::signal("s0")));
    m.add_output("o0", E::signal("s1"));
    m.add_output("o1", E::signal("s2"));
    m.add_output("o2", E::signal("s3"));
    m
}

/// The reference datapath plus a revised copy whose `s3` signal was
/// rewritten by the given [`RevisionKind`].
pub fn revise(kind: RevisionKind, seed: u64) -> (RtlModule, RtlModule) {
    let original = base_module();
    let mut revised = original.clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    let old = revised.signal_expr("s3").expect("defined").clone();
    let helper = E::signal("s1");
    let gate_bit = E::reduce(ReduceOp::Or, E::input("en"));
    let (new_expr, _est) = kind.apply(old, helper, gate_bit, WIDTH, &mut rng);
    revised.replace_signal("s3", new_expr);
    (original, revised)
}

/// Uniform choice over the revision kinds that keep proptest cases fast.
pub fn revision_kind() -> impl Strategy<Value = RevisionKind> {
    prop_oneof![
        Just(RevisionKind::GateTermAdded),
        Just(RevisionKind::MuxBranchSwap),
        Just(RevisionKind::ConditionFlip),
        Just(RevisionKind::PolarityFlip),
        Just(RevisionKind::SingleBitFlip),
        Just(RevisionKind::SparseTrigger),
    ]
}

/// Small multi-output generator cases: wide enough that several cones
/// fail (so scheduling and per-output records matter), small enough to
/// rectify repeatedly per proptest case.
pub fn case_params(id: u32, name: &'static str) -> impl Strategy<Value = CaseParams> {
    (
        any::<u64>(),
        2usize..=3,
        2u32..=3,
        4usize..=7,
        2usize..=3,
        (revision_kind(), revision_kind()),
    )
        .prop_map(
            move |(seed, input_words, width, logic_signals, output_words, (first, second))| {
                CaseParams {
                    id,
                    name,
                    seed,
                    input_words,
                    width,
                    logic_signals,
                    output_words,
                    revisions: vec![(0, first), (1, second)],
                    heavy_optimization: false,
                    aggressive_optimization: false,
                }
            },
        )
}

/// A per-process scratch directory under the system temp dir, removed
/// first if a previous run left it behind.
pub fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
